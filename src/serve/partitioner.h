// Dataset partitioners for the sharded containment service.
//
// A partition assigns every record id of a dataset to exactly one of S
// shards. Within each shard, local ids are assigned in ascending GLOBAL id
// order — the property the global merge relies on: a shard searcher's
// deterministic (score desc, local id asc) ranking is then exactly the
// global (score desc, global id asc) ranking restricted to that shard, so
// per-shard top-k truncation never discards a record the global top-k needs
// (docs/sharding.md).
//
// Both partitioners are pure functions of (records, S): independent of
// thread count, iteration order, or previous calls.

#ifndef GBKMV_SERVE_PARTITIONER_H_
#define GBKMV_SERVE_PARTITIONER_H_

#include <vector>

#include "core/containment.h"
#include "data/dataset.h"

namespace gbkmv {
namespace serve {

// Global record ids per shard, ascending within each shard; every id of
// `dataset` appears in exactly one shard. `num_shards` is clamped to
// [1, dataset.size()], so no returned shard is empty (for an empty dataset
// the result is one empty shard).
//
//   kHash            — shard = Mix64(content hash of the record) mod S.
//                      Uniform in expectation by record count; a record's
//                      shard depends only on its elements, so re-partitioning
//                      a grown dataset moves only 1/S of the records.
//   kSizeStratified  — records sorted by (size, id) and dealt round-robin,
//                      so every shard sees the same size profile. Skewed
//                      workloads (a few huge records dominating query cost)
//                      spread their cost evenly instead of serialising on
//                      one hot shard.
std::vector<std::vector<RecordId>> PartitionDataset(const Dataset& dataset,
                                                    size_t num_shards,
                                                    ShardPartitioner kind);

}  // namespace serve
}  // namespace gbkmv

#endif  // GBKMV_SERVE_PARTITIONER_H_
