// LRU query-result cache for the sharded containment service.
//
// Keyed by the canonical content of a QueryRequest: the query's elements
// plus every field that changes the response (threshold bits, top_k,
// want_scores, want_stats). The 64-bit canonical hash is only a bucket
// index — a hit additionally compares the stored key materially, so hash
// collisions can never serve a wrong response.
//
// Invalidation is the caller's job (the service clears the cache on every
// ingest/promotion/compaction — any mutation can change any query's
// answer; docs/sharding.md). All operations are internally synchronised;
// the service's deterministic batch path nevertheless performs its
// lookup/insert passes serially in request order so hit/miss/eviction
// counters — and therefore the responses themselves — are identical for any
// worker thread count.

#ifndef GBKMV_SERVE_QUERY_CACHE_H_
#define GBKMV_SERVE_QUERY_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "index/query.h"

namespace gbkmv {
namespace serve {

// Canonical 64-bit hash of everything that determines a request's response.
uint64_t HashQueryRequest(const QueryRequest& request);

// True when two requests are guaranteed the same response: same query
// elements and same response-shaping fields (what the cache keys on).
bool EquivalentRequests(const QueryRequest& a, const QueryRequest& b);

struct QueryCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;      // LRU displacements (not Clear)
  uint64_t invalidations = 0;  // entries dropped by Clear
  size_t entries = 0;

  friend bool operator==(const QueryCacheStats&,
                         const QueryCacheStats&) = default;
};

class QueryResultCache {
 public:
  // capacity == 0 disables the cache: Lookup always misses (without
  // counting), Insert is a no-op.
  explicit QueryResultCache(size_t capacity) : capacity_(capacity) {}
  ~QueryResultCache();

  bool enabled() const { return capacity_ > 0; }

  // On hit, copies the cached response into `out` (with stats.cache_hits
  // set) and marks the entry most-recently-used. Counts a hit or miss.
  bool Lookup(const QueryRequest& request, QueryResponse* out);

  // Inserts (or refreshes) the response for `request`, evicting the
  // least-recently-used entry when full.
  void Insert(const QueryRequest& request, const QueryResponse& response);

  // Drops every entry (ingest invalidation). Counters other than `entries`
  // are cumulative across clears.
  void Clear();

  QueryCacheStats stats() const;

 private:
  struct Key {
    Record record;
    uint64_t threshold_bits = 0;
    size_t top_k = 0;
    bool want_scores = false;
    bool want_stats = false;

    friend bool operator==(const Key&, const Key&) = default;
  };
  struct Entry {
    uint64_t hash = 0;
    Key key;
    QueryResponse response;
  };

  static Key MakeKey(const QueryRequest& request);

  // front = most recently used.
  using Lru = std::list<Entry>;
  Lru::iterator FindLocked(uint64_t hash, const Key& key);

  const size_t capacity_;
  mutable std::mutex mutex_;
  Lru lru_;
  // hash -> entries with that hash (collision chain holds iterators, which
  // std::list splice/erase keep valid).
  std::unordered_map<uint64_t, std::vector<Lru::iterator>> index_;
  QueryCacheStats stats_;
};

}  // namespace serve
}  // namespace gbkmv

#endif  // GBKMV_SERVE_QUERY_CACHE_H_
