#include "serve/query_cache.h"

#include <algorithm>
#include <bit>

#include "common/hash.h"
#include "obs/metrics.h"

namespace gbkmv {
namespace serve {

namespace {

// Global mirrors of the per-cache stats_ fields (docs/observability.md):
// the exporters read these, while stats_ keeps serving the exact per-cache
// counters the API and its determinism tests rely on.
struct CacheMetrics {
  obs::Counter* hits = nullptr;
  obs::Counter* misses = nullptr;
  obs::Counter* evictions = nullptr;
  obs::Counter* invalidations = nullptr;
  obs::Gauge* entries = nullptr;
};

const CacheMetrics& Metrics() {
  static const CacheMetrics metrics = [] {
    obs::MetricsRegistry& registry = obs::GlobalMetrics();
    CacheMetrics m;
    m.hits = registry.GetCounter("gbkmv_cache_hits_total");
    m.misses = registry.GetCounter("gbkmv_cache_misses_total");
    m.evictions = registry.GetCounter("gbkmv_cache_evictions_total");
    m.invalidations =
        registry.GetCounter("gbkmv_cache_invalidations_total");
    m.entries = registry.GetGauge("gbkmv_cache_entries");
    return m;
  }();
  return metrics;
}

}  // namespace

uint64_t HashQueryRequest(const QueryRequest& request) {
  uint64_t h = Mix64(0x9e3779b97f4a7c15ULL ^
                     std::bit_cast<uint64_t>(request.threshold));
  h = Mix64(h ^ static_cast<uint64_t>(request.top_k));
  h = Mix64(h ^ ((request.want_scores ? 2u : 0u) |
                 (request.want_stats ? 1u : 0u)));
  h = Mix64(h ^ static_cast<uint64_t>(request.record->size()));
  for (ElementId e : *request.record) h = Mix64(h ^ HashElement(e, h));
  return h;
}

bool EquivalentRequests(const QueryRequest& a, const QueryRequest& b) {
  return a.threshold == b.threshold && a.top_k == b.top_k &&
         a.want_scores == b.want_scores && a.want_stats == b.want_stats &&
         *a.record == *b.record;
}

QueryResultCache::Key QueryResultCache::MakeKey(const QueryRequest& request) {
  Key key;
  key.record = *request.record;
  key.threshold_bits = std::bit_cast<uint64_t>(request.threshold);
  key.top_k = request.top_k;
  key.want_scores = request.want_scores;
  key.want_stats = request.want_stats;
  return key;
}

QueryResultCache::Lru::iterator QueryResultCache::FindLocked(uint64_t hash,
                                                             const Key& key) {
  auto chain = index_.find(hash);
  if (chain == index_.end()) return lru_.end();
  for (Lru::iterator it : chain->second) {
    if (it->key == key) return it;
  }
  return lru_.end();
}

bool QueryResultCache::Lookup(const QueryRequest& request,
                              QueryResponse* out) {
  if (!enabled()) return false;
  const uint64_t hash = HashQueryRequest(request);
  const Key key = MakeKey(request);
  std::lock_guard<std::mutex> lock(mutex_);
  const Lru::iterator it = FindLocked(hash, key);
  if (it == lru_.end()) {
    ++stats_.misses;
    Metrics().misses->Add(1);
    return false;
  }
  ++stats_.hits;
  Metrics().hits->Add(1);
  lru_.splice(lru_.begin(), lru_, it);  // most recently used
  *out = it->response;
  out->stats.cache_hits = 1;
  return true;
}

void QueryResultCache::Insert(const QueryRequest& request,
                              const QueryResponse& response) {
  if (!enabled()) return;
  const uint64_t hash = HashQueryRequest(request);
  Key key = MakeKey(request);
  std::lock_guard<std::mutex> lock(mutex_);
  if (const Lru::iterator it = FindLocked(hash, key); it != lru_.end()) {
    // Refresh (duplicate insert after a concurrent fill): keep one entry.
    it->response = response;
    lru_.splice(lru_.begin(), lru_, it);
    return;
  }
  if (lru_.size() >= capacity_) {
    const Lru::iterator victim = std::prev(lru_.end());
    std::vector<Lru::iterator>& chain = index_[victim->hash];
    std::erase(chain, victim);
    if (chain.empty()) index_.erase(victim->hash);
    lru_.erase(victim);
    ++stats_.evictions;
    Metrics().evictions->Add(1);
    Metrics().entries->Add(-1);
  }
  Metrics().entries->Add(1);
  lru_.push_front(Entry{hash, std::move(key), response});
  // A cached response replays verbatim except for the hit marker, which
  // Lookup sets on the way out.
  lru_.front().response.stats.cache_hits = 0;
  index_[hash].push_back(lru_.begin());
}

void QueryResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.invalidations += lru_.size();
  Metrics().invalidations->Add(lru_.size());
  Metrics().entries->Add(-static_cast<int64_t>(lru_.size()));
  lru_.clear();
  index_.clear();
}

QueryResultCache::~QueryResultCache() {
  // Keep the global entries gauge drift-free when a whole cache goes away
  // (service teardown, tests).
  Metrics().entries->Add(-static_cast<int64_t>(lru_.size()));
}

QueryCacheStats QueryResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  QueryCacheStats stats = stats_;
  stats.entries = lru_.size();
  return stats;
}

}  // namespace serve
}  // namespace gbkmv
