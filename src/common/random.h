// Reproducible pseudo-random number generation (xoshiro256**).
//
// All data generators and query samplers in the library take an explicit
// seed so every experiment is deterministic.

#ifndef GBKMV_COMMON_RANDOM_H_
#define GBKMV_COMMON_RANDOM_H_

#include <cstdint>

namespace gbkmv {

// xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform 64-bit value.
  uint64_t Next();

  // Uniform double in [0, 1).
  double NextUnit();

  // Uniform integer in [0, bound) using Lemire's rejection method; bound > 0.
  uint64_t NextBounded(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Standard normal variate (Box-Muller).
  double NextGaussian();

 private:
  uint64_t s_[4];
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace gbkmv

#endif  // GBKMV_COMMON_RANDOM_H_
