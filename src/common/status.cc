#include "common/status.h"

namespace gbkmv {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

namespace internal {

void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "GBKMV_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace internal
}  // namespace gbkmv
