#include "common/random.h"

#include <cmath>

#include "common/hash.h"
#include "common/status.h"

namespace gbkmv {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  // Seed the four lanes with splitmix64 per the xoshiro authors' guidance.
  uint64_t state = seed;
  for (auto& lane : s_) {
    state = SplitMix64(state);
    lane = state;
  }
  // All-zero state is invalid; splitmix64 never produces four zero outputs
  // from distinct inputs, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x9e3779b97f4a7c15ULL;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextUnit() { return HashToUnit(Next()); }

uint64_t Rng::NextBounded(uint64_t bound) {
  GBKMV_CHECK(bound > 0);
  // Lemire's multiply-shift with rejection to remove modulo bias.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    const uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  GBKMV_CHECK(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextUnit();
  } while (u1 <= 0.0);
  const double u2 = NextUnit();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_gaussian_ = radius * std::sin(theta);
  has_spare_gaussian_ = true;
  return radius * std::cos(theta);
}

}  // namespace gbkmv
