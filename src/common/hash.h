// Hash primitives used by every sketch in the library.
//
// All sketches hash 32-bit element ids to 64-bit values; the KMV-family
// estimators then interpret a hash as a point on the unit interval via
// HashToUnit (53-bit mantissa, so the mapping is injective enough for the
// no-collision assumption of Beyer et al. to hold in practice).
//
// MinHash needs a *family* of independent hash functions; HashFamily derives
// per-function seeds from one master seed with splitmix64 so signatures are
// reproducible across runs.

#ifndef GBKMV_COMMON_HASH_H_
#define GBKMV_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gbkmv {

// splitmix64: fast, well-distributed 64-bit mixer (Steele et al.). Used both
// as a standalone hash of small integers and as a seed sequencer.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Murmur3-style 64-bit finalizer; a second independent mixer used to build
// seeded hash functions (seed XORed in before mixing).
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

// Seeded hash of a 32-bit element id. Different seeds give (empirically)
// independent hash functions.
inline uint64_t HashElement(uint32_t element, uint64_t seed) {
  return Mix64(static_cast<uint64_t>(element) ^ SplitMix64(seed));
}

// Maps a 64-bit hash to the unit interval [0, 1). Uses the top 53 bits so the
// result is exactly representable as a double.
inline double HashToUnit(uint64_t hash) {
  return static_cast<double>(hash >> 11) * 0x1.0p-53;
}

// Inverse of HashToUnit for thresholds: the largest uint64 hash whose unit
// value is <= u. Clamps u to [0, 1].
uint64_t UnitToHashThreshold(double u);

// A reproducible family of k hash functions over element ids.
class HashFamily {
 public:
  // Creates `size` hash functions derived from `master_seed`.
  HashFamily(size_t size, uint64_t master_seed);

  size_t size() const { return seeds_.size(); }

  // Value of the i-th hash function on `element`.
  uint64_t Hash(size_t i, uint32_t element) const {
    return HashElement(element, seeds_[i]);
  }

  const std::vector<uint64_t>& seeds() const { return seeds_; }

 private:
  std::vector<uint64_t> seeds_;
};

}  // namespace gbkmv

#endif  // GBKMV_COMMON_HASH_H_
