// Power-law (Zipf) utilities.
//
// The paper's data model (§IV-C1) assumes element frequency follows
// p1(x) = c1·x^{-α1} and record size follows p2(x) = c2·x^{-α2}. This module
// provides:
//   * ZipfDistribution — exact sampling from a truncated discrete power law
//     via a precomputed CDF table (used by the synthetic generator);
//   * FitPowerLawExponent — discrete MLE exponent estimate (Clauset et al.,
//     SIAM Rev. 2009), used to report each dataset's α1/α2 like Table II;
//   * GeneralizedHarmonic — Σ_{x=1..n} x^{-α}, the normalising constant and
//     the building block of the closed-form cost model of §IV-C6.

#ifndef GBKMV_COMMON_POWER_LAW_H_
#define GBKMV_COMMON_POWER_LAW_H_

#include <cstdint>
#include <vector>

#include "common/random.h"

namespace gbkmv {

// Σ_{x=1..n} x^{-alpha}. alpha may be any real (alpha=0 gives n).
double GeneralizedHarmonic(uint64_t n, double alpha);

// Σ_{x=lo..hi} x^{-alpha} for 1 <= lo <= hi.
double GeneralizedHarmonicRange(uint64_t lo, uint64_t hi, double alpha);

// Discrete power law over {min_value, ..., max_value} with
// P(x) ∝ x^{-alpha}. alpha >= 0 (alpha = 0 is uniform).
class ZipfDistribution {
 public:
  ZipfDistribution(uint64_t min_value, uint64_t max_value, double alpha);

  uint64_t min_value() const { return min_value_; }
  uint64_t max_value() const { return max_value_; }
  double alpha() const { return alpha_; }

  // Draws one sample.
  uint64_t Sample(Rng& rng) const;

  // P(X = x); 0 outside the support.
  double Pmf(uint64_t x) const;

  // E[X].
  double Mean() const;

 private:
  uint64_t min_value_;
  uint64_t max_value_;
  double alpha_;
  double norm_;                  // Σ x^{-alpha} over the support.
  std::vector<double> cdf_;      // cdf_[i] = P(X <= min_value_ + i).
};

// Discrete MLE power-law exponent for observations >= x_min (Clauset et al.
// style, exact truncated likelihood): maximises
//   L(α) = −n·log Σ_{x=x_min..x_max} x^{-α} − α·Σ log x_i
// over α ∈ [0, 10] by ternary search (the likelihood is concave in α), with
// x_max the largest observation. Observations below x_min are ignored.
// Returns 0 if fewer than 2 usable observations or all observations equal.
double FitPowerLawExponent(const std::vector<uint64_t>& observations,
                           uint64_t x_min);

}  // namespace gbkmv

#endif  // GBKMV_COMMON_POWER_LAW_H_
