#include "common/bitmap.h"

#include <algorithm>
#include <bit>

#include "common/status.h"

namespace gbkmv {

Bitmap::Bitmap(size_t num_bits)
    : num_bits_(num_bits), words_((num_bits + 63) / 64, 0) {}

void Bitmap::Set(size_t i) {
  GBKMV_CHECK(i < num_bits_);
  words_[i >> 6] |= (1ULL << (i & 63));
}

void Bitmap::Clear(size_t i) {
  GBKMV_CHECK(i < num_bits_);
  words_[i >> 6] &= ~(1ULL << (i & 63));
}

bool Bitmap::Test(size_t i) const {
  GBKMV_CHECK(i < num_bits_);
  return (words_[i >> 6] >> (i & 63)) & 1ULL;
}

size_t Bitmap::Count() const {
  size_t total = 0;
  for (uint64_t w : words_) total += std::popcount(w);
  return total;
}

size_t Bitmap::IntersectCount(const Bitmap& a, const Bitmap& b) {
  return IntersectCountWords(a.words_, b.words_);
}

size_t Bitmap::IntersectCountWords(std::span<const uint64_t> a,
                                   std::span<const uint64_t> b) {
  const size_t n = std::min(a.size(), b.size());
  size_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    total += std::popcount(a[i] & b[i]);
  }
  return total;
}

Bitmap Bitmap::FromWords(size_t num_bits, std::vector<uint64_t> words) {
  GBKMV_CHECK(words.size() == (num_bits + 63) / 64);
  Bitmap bitmap;
  bitmap.num_bits_ = num_bits;
  bitmap.words_ = std::move(words);
  return bitmap;
}

size_t Bitmap::UnionCount(const Bitmap& a, const Bitmap& b) {
  const size_t n = std::min(a.words_.size(), b.words_.size());
  size_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    total += std::popcount(a.words_[i] | b.words_[i]);
  }
  for (size_t i = n; i < a.words_.size(); ++i) total += std::popcount(a.words_[i]);
  for (size_t i = n; i < b.words_.size(); ++i) total += std::popcount(b.words_[i]);
  return total;
}

bool Bitmap::Empty() const {
  return std::all_of(words_.begin(), words_.end(),
                     [](uint64_t w) { return w == 0; });
}

bool Bitmap::operator==(const Bitmap& other) const {
  if (num_bits_ != other.num_bits_) return false;
  return words_ == other.words_;
}

}  // namespace gbkmv
