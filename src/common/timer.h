// Monotonic wall-clock timer for experiment harnesses.

#ifndef GBKMV_COMMON_TIMER_H_
#define GBKMV_COMMON_TIMER_H_

#include <chrono>

namespace gbkmv {

class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  // Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gbkmv

#endif  // GBKMV_COMMON_TIMER_H_
