// Monotonic wall-clock timing for experiment harnesses and the
// observability layer.
//
// Every latency measurement in the repo goes through this header and
// therefore through std::chrono::steady_clock — system_clock (or any other
// non-steady clock) jumps under NTP adjustment, which would corrupt latency
// histograms and slow-query detection with negative or wildly inflated
// durations. The static_assert below makes the monotonicity precondition a
// compile-time fact rather than a convention.

#ifndef GBKMV_COMMON_TIMER_H_
#define GBKMV_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace gbkmv {

static_assert(std::chrono::steady_clock::is_steady,
              "latency instrumentation requires a monotonic clock");

// Monotonic nanoseconds since an arbitrary process-stable epoch. The raw
// timestamp the observability layer (src/obs) stores in spans and feeds to
// histograms; differences between two calls are always non-negative.
inline uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  // Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }
  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gbkmv

#endif  // GBKMV_COMMON_TIMER_H_
