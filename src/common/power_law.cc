#include "common/power_law.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"

namespace gbkmv {

double GeneralizedHarmonic(uint64_t n, double alpha) {
  return GeneralizedHarmonicRange(1, n, alpha);
}

double GeneralizedHarmonicRange(uint64_t lo, uint64_t hi, double alpha) {
  GBKMV_CHECK(lo >= 1 && lo <= hi);
  // Exact summation below a cutoff; Euler–Maclaurin tail above it so the
  // function stays cheap for universes of hundreds of millions.
  constexpr uint64_t kExactCutoff = 1u << 20;
  double sum = 0.0;
  const uint64_t exact_hi = std::min(hi, lo + std::min<uint64_t>(kExactCutoff, hi - lo));
  for (uint64_t x = lo; x <= exact_hi; ++x) sum += std::pow(static_cast<double>(x), -alpha);
  if (exact_hi < hi) {
    // ∫_{exact_hi+0.5}^{hi+0.5} x^{-alpha} dx approximates the remaining sum.
    const double a = static_cast<double>(exact_hi) + 0.5;
    const double b = static_cast<double>(hi) + 0.5;
    if (std::abs(alpha - 1.0) < 1e-12) {
      sum += std::log(b / a);
    } else {
      sum += (std::pow(b, 1.0 - alpha) - std::pow(a, 1.0 - alpha)) / (1.0 - alpha);
    }
  }
  return sum;
}

ZipfDistribution::ZipfDistribution(uint64_t min_value, uint64_t max_value,
                                   double alpha)
    : min_value_(min_value), max_value_(max_value), alpha_(alpha) {
  GBKMV_CHECK(min_value >= 1 && min_value <= max_value);
  GBKMV_CHECK(alpha >= 0.0);
  const uint64_t support = max_value_ - min_value_ + 1;
  cdf_.resize(support);
  double acc = 0.0;
  for (uint64_t i = 0; i < support; ++i) {
    acc += std::pow(static_cast<double>(min_value_ + i), -alpha_);
    cdf_[i] = acc;
  }
  norm_ = acc;
  for (double& c : cdf_) c /= norm_;
  cdf_.back() = 1.0;  // Guard against round-off at the top.
}

uint64_t ZipfDistribution::Sample(Rng& rng) const {
  const double u = rng.NextUnit();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  const size_t idx = static_cast<size_t>(it - cdf_.begin());
  return min_value_ + std::min<uint64_t>(idx, cdf_.size() - 1);
}

double ZipfDistribution::Pmf(uint64_t x) const {
  if (x < min_value_ || x > max_value_) return 0.0;
  return std::pow(static_cast<double>(x), -alpha_) / norm_;
}

double ZipfDistribution::Mean() const {
  double mean = 0.0;
  for (uint64_t x = min_value_; x <= max_value_; ++x) {
    mean += static_cast<double>(x) * Pmf(x);
  }
  return mean;
}

double FitPowerLawExponent(const std::vector<uint64_t>& observations,
                           uint64_t x_min) {
  GBKMV_CHECK(x_min >= 1);
  double log_sum = 0.0;
  size_t n = 0;
  uint64_t x_max = x_min;
  for (uint64_t x : observations) {
    if (x < x_min) continue;
    log_sum += std::log(static_cast<double>(x));
    x_max = std::max(x_max, x);
    ++n;
  }
  if (n < 2 || x_max == x_min) return 0.0;

  // Truncated discrete power-law log-likelihood (up to a constant).
  const auto log_likelihood = [&](double alpha) {
    return -static_cast<double>(n) *
               std::log(GeneralizedHarmonicRange(x_min, x_max, alpha)) -
           alpha * log_sum;
  };
  // Concave in alpha: ternary search on [0, 10].
  double lo = 0.0, hi = 10.0;
  for (int iter = 0; iter < 200; ++iter) {
    const double m1 = lo + (hi - lo) / 3.0;
    const double m2 = hi - (hi - lo) / 3.0;
    if (log_likelihood(m1) < log_likelihood(m2)) {
      lo = m1;
    } else {
      hi = m2;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace gbkmv
