// Fixed-width bitmap used for the GB-KMV high-frequency buffer.
//
// Each record keeps an r-bit bitmap (bit i set iff the record contains the
// i-th most frequent element); |H_Q ∩ H_X| is a word-wise AND + popcount.

#ifndef GBKMV_COMMON_BITMAP_H_
#define GBKMV_COMMON_BITMAP_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"

namespace gbkmv {

namespace io {
class Reader;
class Writer;
}  // namespace io

class Bitmap {
 public:
  Bitmap() = default;
  // Creates an all-zero bitmap with `num_bits` addressable bits.
  explicit Bitmap(size_t num_bits);

  size_t num_bits() const { return num_bits_; }
  size_t num_words() const { return words_.size(); }

  // Sets / clears / reads bit `i`; i < num_bits().
  void Set(size_t i);
  void Clear(size_t i);
  bool Test(size_t i) const;

  // Number of set bits.
  size_t Count() const;

  // Number of bits set in both `a` and `b`. The bitmaps may have different
  // widths; bits beyond the shorter one count as zero.
  static size_t IntersectCount(const Bitmap& a, const Bitmap& b);

  // Same, over raw word arrays (the flat sketch store keeps bitmaps as word
  // slices of one arena instead of Bitmap objects).
  static size_t IntersectCountWords(std::span<const uint64_t> a,
                                    std::span<const uint64_t> b);

  // The backing words, bit i at words()[i/64] >> (i%64).
  std::span<const uint64_t> words() const { return words_; }

  // Rebuilds a bitmap from its words (the flat sketch store's inverse of
  // words()). `words` must be exactly (num_bits + 63) / 64 entries and carry
  // no set bit at position >= num_bits.
  static Bitmap FromWords(size_t num_bits, std::vector<uint64_t> words);

  // Number of bits set in either bitmap.
  static size_t UnionCount(const Bitmap& a, const Bitmap& b);

  // True if no bit is set.
  bool Empty() const;

  bool operator==(const Bitmap& other) const;

  // Bytes of heap storage (space accounting).
  size_t MemoryBytes() const { return words_.size() * sizeof(uint64_t); }

  // Binary snapshot serialization (src/io). Defined in io/persist_data.cc.
  void SaveTo(io::Writer* out) const;
  static Result<Bitmap> LoadFrom(io::Reader* in);

 private:
  size_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace gbkmv

#endif  // GBKMV_COMMON_BITMAP_H_
