// Lightweight Status / Result<T> error-handling primitives.
//
// The library does not throw exceptions on its regular paths (RocksDB/Arrow
// idiom): fallible operations return a Status, or a Result<T> when they also
// produce a value. Programmer errors (violated preconditions) use GBKMV_CHECK,
// which aborts with a message.

#ifndef GBKMV_COMMON_STATUS_H_
#define GBKMV_COMMON_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <variant>

namespace gbkmv {

// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kIOError,
  kCorruption,
  kInternal,
};

// Returns a short human-readable name, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

// A Status is either OK or carries an error code plus message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "InvalidArgument: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Result<T> is either a value or an error Status. Accessing the value of an
// errored Result is a checked programmer error.
template <typename T>
class Result {
 public:
  Result(T value) : repr_(std::move(value)) {}          // NOLINT(runtime/explicit)
  Result(Status status) : repr_(std::move(status)) {    // NOLINT(runtime/explicit)
    if (std::get<Status>(repr_).ok()) {
      std::fprintf(stderr, "Result constructed from OK status\n");
      std::abort();
    }
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(repr_);
  }

  T& value() & {
    CheckOk();
    return std::get<T>(repr_);
  }
  const T& value() const& {
    CheckOk();
    return std::get<T>(repr_);
  }
  T&& value() && {
    CheckOk();
    return std::get<T>(std::move(repr_));
  }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::fprintf(stderr, "Result::value() on error: %s\n",
                   std::get<Status>(repr_).ToString().c_str());
      std::abort();
    }
  }

  std::variant<T, Status> repr_;
};

namespace internal {
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr);
}  // namespace internal

// Aborts with location info if `cond` is false. Used for preconditions that
// indicate a bug in the caller, not a recoverable runtime error.
#define GBKMV_CHECK(cond)                                          \
  do {                                                             \
    if (!(cond)) {                                                 \
      ::gbkmv::internal::CheckFailed(__FILE__, __LINE__, #cond);   \
    }                                                              \
  } while (0)

// Propagates a non-OK Status from the current function.
#define GBKMV_RETURN_IF_ERROR(expr)              \
  do {                                           \
    ::gbkmv::Status _st = (expr);                \
    if (!_st.ok()) return _st;                   \
  } while (0)

}  // namespace gbkmv

#endif  // GBKMV_COMMON_STATUS_H_
