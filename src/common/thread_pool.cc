#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

#include "common/hash.h"
#include "common/timer.h"
#include "obs/metrics.h"

namespace gbkmv {

namespace {

std::atomic<size_t> g_default_threads{0};  // 0 = hardware concurrency

// True on threads that are pool workers: a ParallelFor issued from one runs
// inline so nested parallelism can never deadlock on a starved queue.
thread_local bool t_in_pool_worker = false;

// Pool instrumentation (docs/observability.md): queue depth is a gauge so
// it never drifts under the runtime toggle; wait/run times are only
// timestamped while the registry is enabled.
struct PoolMetrics {
  obs::Counter* tasks = nullptr;
  obs::Gauge* queue_depth = nullptr;
  obs::Histogram* task_wait_ns = nullptr;
  obs::Histogram* task_run_ns = nullptr;
  obs::Histogram* parallel_for_ns = nullptr;
};

const PoolMetrics& Metrics() {
  static const PoolMetrics metrics = [] {
    obs::MetricsRegistry& registry = obs::GlobalMetrics();
    PoolMetrics m;
    m.tasks = registry.GetCounter("gbkmv_pool_tasks_total");
    m.queue_depth = registry.GetGauge("gbkmv_pool_queue_depth");
    m.task_wait_ns = registry.GetHistogram("gbkmv_pool_task_wait_ns");
    m.task_run_ns = registry.GetHistogram("gbkmv_pool_task_run_ns");
    m.parallel_for_ns = registry.GetHistogram("gbkmv_pool_parallel_for_ns");
    return m;
  }();
  return metrics;
}

}  // namespace

size_t DefaultThreads() {
  const size_t override_threads =
      g_default_threads.load(std::memory_order_relaxed);
  if (override_threads > 0) return override_threads;
  return std::max<size_t>(1, std::thread::hardware_concurrency());
}

void SetDefaultThreads(size_t num_threads) {
  g_default_threads.store(num_threads, std::memory_order_relaxed);
}

uint64_t ChunkSeed(uint64_t base_seed, size_t chunk_index) {
  return SplitMix64(base_seed ^ Mix64(0xC0FFEEULL + chunk_index));
}

std::unique_ptr<ThreadPool> MakeBuildPool(size_t num_threads, size_t work) {
  if (num_threads == 0) num_threads = DefaultThreads();
  if (num_threads <= 1 || work <= 1) return nullptr;
  return std::make_unique<ThreadPool>(num_threads);
}

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = DefaultThreads();
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::WorkerLoop() {
  t_in_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  auto task = std::make_shared<std::packaged_task<void()>>(std::move(fn));
  std::future<void> future = task->get_future();
  const PoolMetrics& metrics = Metrics();
  metrics.tasks->Add(1);
  metrics.queue_depth->Add(1);
  const uint64_t enqueue_ns =
      obs::GlobalMetrics().enabled() ? MonotonicNanos() : 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.emplace_back([task, enqueue_ns] {
      const PoolMetrics& m = Metrics();
      m.queue_depth->Add(-1);
      if (enqueue_ns != 0) {
        const uint64_t start_ns = MonotonicNanos();
        m.task_wait_ns->Record(start_ns - enqueue_ns);
        (*task)();
        m.task_run_ns->Record(MonotonicNanos() - start_ns);
      } else {
        (*task)();
      }
    });
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::ParallelFor(
    size_t begin, size_t end, size_t grain,
    const std::function<void(size_t, size_t, size_t)>& fn) {
  if (end <= begin) return;
  grain = std::max<size_t>(1, grain);
  const size_t n = end - begin;
  const size_t num_chunks = (n + grain - 1) / grain;

  const auto run_chunk = [&](size_t c) {
    const size_t chunk_begin = begin + c * grain;
    const size_t chunk_end = std::min(end, chunk_begin + grain);
    fn(chunk_begin, chunk_end, c);
  };

  const uint64_t call_start_ns =
      obs::GlobalMetrics().enabled() ? MonotonicNanos() : 0;

  // Inline paths: trivial ranges, single-worker pools, and nested calls all
  // use the same chunk decomposition, so results match the concurrent path.
  if (num_chunks == 1 || num_threads() == 1 || t_in_pool_worker) {
    for (size_t c = 0; c < num_chunks; ++c) run_chunk(c);
    if (call_start_ns != 0) {
      Metrics().parallel_for_ns->Record(MonotonicNanos() - call_start_ns);
    }
    return;
  }

  // Shared drain state: workers and the calling thread claim chunk indices
  // from one atomic counter; the first exception parks the counter at the
  // end so remaining chunks are abandoned.
  struct DrainState {
    std::atomic<size_t> next_chunk{0};
    std::mutex mutex;
    std::condition_variable done_cv;
    size_t helpers_finished = 0;
    std::exception_ptr exception;
  };
  auto state = std::make_shared<DrainState>();

  const auto drain = [state, num_chunks, &run_chunk] {
    for (;;) {
      const size_t c =
          state->next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) return;
      try {
        run_chunk(c);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->mutex);
        if (!state->exception) state->exception = std::current_exception();
        state->next_chunk.store(num_chunks, std::memory_order_relaxed);
        return;
      }
    }
  };

  const size_t num_helpers = std::min(num_threads(), num_chunks) - 1;
  Metrics().tasks->Add(num_helpers);
  Metrics().queue_depth->Add(static_cast<int64_t>(num_helpers));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (size_t i = 0; i < num_helpers; ++i) {
      queue_.emplace_back([state, drain] {
        Metrics().queue_depth->Add(-1);
        drain();
        {
          std::lock_guard<std::mutex> state_lock(state->mutex);
          ++state->helpers_finished;
        }
        state->done_cv.notify_one();
      });
    }
  }
  cv_.notify_all();

  drain();  // The calling thread participates.

  std::unique_lock<std::mutex> lock(state->mutex);
  state->done_cv.wait(
      lock, [&] { return state->helpers_finished == num_helpers; });
  if (state->exception) std::rethrow_exception(state->exception);
  if (call_start_ns != 0) {
    Metrics().parallel_for_ns->Record(MonotonicNanos() - call_start_ns);
  }
}

}  // namespace gbkmv
