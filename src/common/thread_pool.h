// Fixed-size thread pool shared by every parallel algorithm in the library
// (sketch construction, sharded index builds, batch query, ground truth).
//
// Design constraints, in order:
//   1. Determinism — ParallelFor decomposes [begin, end) into chunks whose
//      boundaries depend only on (begin, end, grain), never on the thread
//      count or scheduling. Callers that write per-chunk results into
//      pre-sized slots and merge in chunk order therefore produce results
//      byte-identical to a sequential run for ANY thread count (the
//      invariant tests/parallel_equivalence_test.cc enforces).
//   2. No deadlocks — a ParallelFor issued from inside a pool worker runs
//      inline on that worker (same chunk decomposition, same results), so
//      nested parallelism never blocks on a starved queue.
//   3. Exceptions propagate — the first exception thrown by a task or chunk
//      is captured and rethrown on the calling thread; remaining chunks are
//      abandoned.

#ifndef GBKMV_COMMON_THREAD_POOL_H_
#define GBKMV_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace gbkmv {

// Threads to use when a caller passes num_threads == 0 ("auto"): the global
// override installed by SetDefaultThreads (--threads=N in the CLI/bench
// harnesses), else std::thread::hardware_concurrency(), never less than 1.
size_t DefaultThreads();
void SetDefaultThreads(size_t num_threads);  // 0 restores hardware default.

// Deterministic per-chunk RNG seed: callers that need randomness inside a
// ParallelFor chunk derive it from the task seed and the *chunk* index (not
// the worker id), so the stream consumed by each chunk is independent of the
// thread count.
uint64_t ChunkSeed(uint64_t base_seed, size_t chunk_index);

class ThreadPool {
 public:
  // num_threads == 0 means DefaultThreads(). The pool always has at least
  // one worker so Submit never runs inline.
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  // Runs `fn` on a pool worker. The future rethrows any exception.
  std::future<void> Submit(std::function<void()> fn);

  // Calls fn(chunk_begin, chunk_end, chunk_index) over [begin, end) split
  // into ⌈(end−begin)/grain⌉ chunks. Chunks may run concurrently on up to
  // num_threads() workers (the calling thread participates); the chunk
  // decomposition and indices are identical for every thread count. Returns
  // after all chunks finish; rethrows the first chunk exception. A zero-work
  // range (end <= begin) is a no-op. grain is clamped to >= 1.
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   const std::function<void(size_t, size_t, size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

// Pool for a build step: null (caller runs serially) unless the resolved
// thread count (0 = DefaultThreads()) and the work size both warrant
// workers. Shared by every index Create path.
std::unique_ptr<ThreadPool> MakeBuildPool(size_t num_threads, size_t work);

}  // namespace gbkmv

#endif  // GBKMV_COMMON_THREAD_POOL_H_
