#include "common/parse.h"

#include <charconv>
#include <cmath>
#include <string>

namespace gbkmv {

namespace {

Status BadNumber(std::string_view what, std::string_view text) {
  return Status::InvalidArgument("expected " + std::string(what) + ", got '" +
                                 std::string(text) + "'");
}

// Whole-string from_chars: success only if every character was consumed.
template <typename T>
bool ParseWhole(std::string_view text, T* out) {
  const char* const first = text.data();
  const char* const last = first + text.size();
  const std::from_chars_result r = std::from_chars(first, last, *out);
  return r.ec == std::errc() && r.ptr == last;
}

template <typename T, typename Item>
Result<std::vector<T>> ParseList(std::string_view text, char sep,
                                 const Item& item) {
  std::vector<T> out;
  while (true) {
    const size_t pos = text.find(sep);
    Result<T> value = item(text.substr(0, pos));
    if (!value.ok()) return value.status();
    out.push_back(*value);
    if (pos == std::string_view::npos) return out;
    text.remove_prefix(pos + 1);
  }
}

}  // namespace

Result<uint64_t> ParseU64(std::string_view text) {
  // from_chars<unsigned> already rejects '-', but also reject a leading '+'
  // explicitly so the accepted grammar is plain digits, nothing else.
  uint64_t value = 0;
  if (text.empty() || text.front() == '+' || !ParseWhole(text, &value)) {
    return BadNumber("a non-negative integer", text);
  }
  return value;
}

Result<int64_t> ParseI64(std::string_view text) {
  int64_t value = 0;
  if (text.empty() || text.front() == '+' || !ParseWhole(text, &value)) {
    return BadNumber("an integer", text);
  }
  return value;
}

Result<double> ParseF64(std::string_view text) {
  double value = 0.0;
  if (text.empty() || text.front() == '+' || !ParseWhole(text, &value) ||
      !std::isfinite(value)) {
    return BadNumber("a number", text);
  }
  return value;
}

Result<std::vector<uint64_t>> ParseU64List(std::string_view text, char sep) {
  return ParseList<uint64_t>(text, sep, ParseU64);
}

Result<std::vector<double>> ParseF64List(std::string_view text, char sep) {
  return ParseList<double>(text, sep, ParseF64);
}

}  // namespace gbkmv
