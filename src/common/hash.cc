#include "common/hash.h"

#include <cmath>

namespace gbkmv {

uint64_t UnitToHashThreshold(double u) {
  if (u <= 0.0) return 0;
  if (u >= 1.0) return ~0ULL;
  // HashToUnit(h) = (h >> 11) * 2^-53 <= u  <=>  (h >> 11) <= u * 2^53.
  const double scaled = std::floor(u * 0x1.0p53);
  uint64_t top = static_cast<uint64_t>(scaled);
  if (top > (1ULL << 53) - 1) top = (1ULL << 53) - 1;
  return (top << 11) | 0x7ffULL;
}

HashFamily::HashFamily(size_t size, uint64_t master_seed) {
  seeds_.reserve(size);
  uint64_t state = master_seed;
  for (size_t i = 0; i < size; ++i) {
    state = SplitMix64(state + 0x632be59bd9b4e019ULL);
    seeds_.push_back(state);
  }
}

}  // namespace gbkmv
