// Checked numeric parsing for command-line flags.
//
// The std::atoi/atof/strtol family silently turns malformed input into 0
// (or the longest numeric prefix), so a typo like --queries=20O runs the
// benchmark with 20 queries and nobody notices. These helpers accept a
// value only when the ENTIRE string parses as a number of the target type
// and fits its range; anything else — empty string, trailing garbage,
// overflow, lone signs — comes back InvalidArgument with the offending
// text, for the caller to surface next to the flag name.

#ifndef GBKMV_COMMON_PARSE_H_
#define GBKMV_COMMON_PARSE_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace gbkmv {

// Non-negative decimal integer ("42"). No sign, no whitespace, no prefix.
Result<uint64_t> ParseU64(std::string_view text);

// Decimal integer with an optional leading '-' ("-3", "17").
Result<int64_t> ParseI64(std::string_view text);

// Finite decimal floating-point value ("0.5", "-1e3"). Rejects inf/nan and
// values that overflow a double.
Result<double> ParseF64(std::string_view text);

// `sep`-separated lists of the above ("0.5,0.8,0.9"). Empty items (leading,
// trailing or doubled separators) and an empty input are rejected.
Result<std::vector<uint64_t>> ParseU64List(std::string_view text,
                                           char sep = ',');
Result<std::vector<double>> ParseF64List(std::string_view text, char sep = ',');

}  // namespace gbkmv

#endif  // GBKMV_COMMON_PARSE_H_
