// Exporters for the observability layer (docs/observability.md):
//
//   * Prometheus text exposition format — counters, gauges, and histograms
//     with cumulative `le` buckets, ready for a scrape endpoint or a
//     textfile collector;
//   * JSON — the full MetricsSnapshot, loss-free: SnapshotFromJson parses
//     what SnapshotToJson wrote back into an equal snapshot (the round-trip
//     tests/obs_metrics_test.cc enforces), so dumps are machine-readable
//     inputs for tooling (bench/check_throughput.py, offline diffing);
//   * a combined dump (metrics + recent traces + slow queries) and a
//     PeriodicMetricsDumper that writes it to a file on an interval —
//     crash-forensics flight recording without a scrape pipeline.

#ifndef GBKMV_OBS_EXPORT_H_
#define GBKMV_OBS_EXPORT_H_

#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gbkmv {
namespace obs {

// Prometheus text format. Histogram buckets are emitted cumulatively at
// every non-empty bucket's upper bound plus "+Inf"; counter names follow
// the *_total convention (docs/observability.md), gauges and histograms are
// typed accordingly.
std::string SnapshotToPrometheus(const MetricsSnapshot& snapshot);

// JSON object (schema "gbkmv_metrics_v1"). Integer-exact: counter and sum
// values are written as integers, never through a double.
std::string SnapshotToJson(const MetricsSnapshot& snapshot);

// Parses SnapshotToJson output (schema-checked). This is a minimal parser
// for the exporter's own dialect — objects, arrays, strings, integers,
// booleans — not a general JSON library.
Result<MetricsSnapshot> SnapshotFromJson(const std::string& json);

// JSON array of traces (spans with stage names, shard tags, ns offsets).
std::string TracesToJson(const std::vector<QueryTrace>& traces);

// Combined dump (schema "gbkmv_metrics_dump_v1"): {"metrics": <metrics_v1>,
// "traces": [...], "slow_queries": [...]}.
std::string DumpToJson(const MetricsRegistry& registry, const Tracer& tracer);

// Writes `contents` atomically-ish (temp file + rename, the snapshot-writer
// idiom) so a reader never sees a torn dump.
Status WriteFileAtomic(const std::string& path, const std::string& contents);

// Background thread that writes DumpToJson(GlobalMetrics(), GlobalTracer())
// to `path` every `interval_seconds` (and once more on destruction). The
// serving CLI wires this to --metrics-out/--metrics-interval.
class PeriodicMetricsDumper {
 public:
  PeriodicMetricsDumper(std::string path, double interval_seconds);
  ~PeriodicMetricsDumper();
  PeriodicMetricsDumper(const PeriodicMetricsDumper&) = delete;
  PeriodicMetricsDumper& operator=(const PeriodicMetricsDumper&) = delete;

  // Last write status (OK until a dump fails); also flushed by the
  // destructor.
  Status FlushNow();

 private:
  void Loop();

  const std::string path_;
  const double interval_seconds_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  Status last_status_;
  std::thread thread_;
};

}  // namespace obs
}  // namespace gbkmv

#endif  // GBKMV_OBS_EXPORT_H_
