// Per-query stage tracing: a sampled flight recorder for the serving path
// (docs/observability.md).
//
// A QueryTrace records what one query spent its time on — cache lookup,
// fan-out, per-shard search, top-k merge, cache fill, and (for sampled
// queries) the searcher-internal sketch/scan/refine stages — as spans with
// monotonic timestamps (common/timer.h). Traces live in a fixed-size ring
// buffer; queries slower than a configurable threshold additionally land in
// a slow-query ring regardless of sampling, so a latency spike is always
// explainable after the fact.
//
// Tracing is passive: it never changes which shards run, in what order, or
// what they return, so serve results are bit-identical with tracing on,
// off, or at any sampling rate (tests/obs_integration_test.cc). When the
// tracer is inactive the per-query cost is one relaxed load + branch.
//
// Searcher-internal stages are captured through a thread-local SpanSink:
// the serving layer installs one around a traced shard search
// (ScopedSpanSink), and StageTimer call sites inside SearchQ record into it
// — or do nothing but a thread-local load when no sink is installed.

#ifndef GBKMV_OBS_TRACE_H_
#define GBKMV_OBS_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/timer.h"

namespace gbkmv {
namespace obs {

enum class Stage : uint8_t {
  kCacheLookup = 0,  // serve: query-result cache probe
  kFanout = 1,       // serve: first shard task start -> last task end
  kShardSearch = 2,  // serve: one shard's SearchQ (span.shard = which)
  kMerge = 3,        // serve: global top-k fan-in
  kCacheFill = 4,    // serve: cache insert / duplicate re-lookup
  kSketch = 5,       // searcher: query sketch construction
  kScan = 6,         // searcher: candidate generation (posting scans)
  kRefine = 7,       // searcher: candidate scoring / verification
  kServerParse = 8,  // server: HTTP + JSON request decode on the reactor
  kServerQueue = 9,  // server: admission-queue wait until batch formation
};

inline constexpr size_t kNumStages = 10;

const char* StageName(Stage stage);

struct TraceSpan {
  Stage stage = Stage::kCacheLookup;
  // Shard index for kShardSearch and searcher stages recorded inside a
  // shard task; -1 when not shard-scoped.
  int32_t shard = -1;
  // Offsets from QueryTrace::start_ns (monotonic).
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;

  friend bool operator==(const TraceSpan&, const TraceSpan&) = default;
};

struct QueryTrace {
  uint64_t id = 0;        // assigned by the tracer, monotonically increasing
  uint64_t start_ns = 0;  // MonotonicNanos() at query start
  uint64_t total_ns = 0;
  double threshold = 0.0;
  uint32_t num_hits = 0;
  uint32_t shards_queried = 0;
  bool cache_hit = false;
  // True when the trace was selected by sampling; false when it was
  // recorded only because it crossed the slow-query threshold.
  bool sampled = false;
  std::vector<TraceSpan> spans;  // at most kMaxSpans, overflow dropped

  static constexpr size_t kMaxSpans = 96;

  friend bool operator==(const QueryTrace&, const QueryTrace&) = default;
};

struct TracerConfig {
  // Record every Nth served query (deterministic counter, not RNG). 0
  // disables sampling.
  size_t sample_every = 0;
  // Queries with total_ns >= slow_query_ns are recorded into the slow ring
  // even when not sampled. 0 disables the slow-query log.
  uint64_t slow_query_ns = 0;
  size_t ring_capacity = 256;
  size_t slow_ring_capacity = 64;
};

class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Reconfigures rings and knobs; existing traces are dropped when a ring
  // shrinks below its occupancy.
  void Configure(const TracerConfig& config);
  TracerConfig config() const;

  // True when any recording can happen (sampling or slow log on) — the
  // serving layer's one-branch gate before it starts timestamping.
  bool active() const { return active_.load(std::memory_order_relaxed); }
  uint64_t slow_query_ns() const {
    return slow_ns_.load(std::memory_order_relaxed);
  }

  // Deterministic sampling decision for the next query (one relaxed
  // fetch_add; the first call after Configure samples). Always false when
  // sampling is off.
  bool ShouldSample();

  // Files the trace: into the main ring when trace.sampled, into the slow
  // ring when total_ns crosses the threshold (either or both). Traces that
  // match neither are dropped. The tracer assigns trace.id.
  void Record(QueryTrace trace);

  // Copies of the retained traces, oldest first.
  std::vector<QueryTrace> Recent() const;
  std::vector<QueryTrace> SlowQueries() const;

  uint64_t traces_recorded() const;
  uint64_t slow_queries_recorded() const;

 private:
  std::atomic<bool> active_{false};
  std::atomic<size_t> sample_every_{0};
  std::atomic<uint64_t> slow_ns_{0};
  std::atomic<uint64_t> sample_counter_{0};

  mutable std::mutex mutex_;
  TracerConfig config_;
  // Rings: fixed capacity, `*_next_` is the slot the next trace overwrites.
  std::vector<QueryTrace> ring_;
  size_t ring_next_ = 0;
  std::vector<QueryTrace> slow_ring_;
  size_t slow_next_ = 0;
  uint64_t next_id_ = 0;
  uint64_t recorded_ = 0;
  uint64_t slow_recorded_ = 0;
};

// The process-wide tracer the serving layer and CLI use. Inactive by
// default; Configure with sample_every/slow_query_ns to arm it.
Tracer& GlobalTracer();

// --- searcher-internal stage capture ---------------------------------------

// Collects stage spans recorded on the current thread while installed
// (one traced shard search). Not thread-safe — one sink per thread by
// construction (ScopedSpanSink installs into a thread-local slot).
class SpanSink {
 public:
  // `base_ns` is the owning trace's start_ns (span offsets are relative to
  // it); `shard` tags every span recorded through this sink.
  SpanSink(uint64_t base_ns, int32_t shard) : base_ns_(base_ns),
                                              shard_(shard) {}

  void Record(Stage stage, uint64_t start_ns, uint64_t end_ns) {
    if (spans_.size() >= QueryTrace::kMaxSpans) return;
    spans_.push_back({stage, shard_,
                      start_ns > base_ns_ ? start_ns - base_ns_ : 0,
                      end_ns - start_ns});
  }

  std::vector<TraceSpan> Take() { return std::move(spans_); }

 private:
  uint64_t base_ns_;
  int32_t shard_;
  std::vector<TraceSpan> spans_;
};

// The sink installed on this thread, or nullptr (the common case).
SpanSink* CurrentSpanSink();

// Installs `sink` as the current thread's sink for the enclosing scope.
class ScopedSpanSink {
 public:
  explicit ScopedSpanSink(SpanSink* sink);
  ~ScopedSpanSink();
  ScopedSpanSink(const ScopedSpanSink&) = delete;
  ScopedSpanSink& operator=(const ScopedSpanSink&) = delete;

 private:
  SpanSink* previous_;
};

// Records one stage span into the current thread's sink, if any. When no
// sink is installed (every untraced query) the constructor is a
// thread-local load + branch and the destructor a branch.
class StageTimer {
 public:
  explicit StageTimer(Stage stage) : sink_(CurrentSpanSink()), stage_(stage) {
    if (sink_ != nullptr) start_ns_ = MonotonicNanos();
  }
  ~StageTimer() { Stop(); }
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

  // Ends the span early (records once; the destructor then does nothing).
  void Stop() {
    if (sink_ == nullptr) return;
    sink_->Record(stage_, start_ns_, MonotonicNanos());
    sink_ = nullptr;
  }

 private:
  SpanSink* sink_;
  Stage stage_;
  uint64_t start_ns_ = 0;
};

// --- network-server stage capture ------------------------------------------

// The network front end (src/server) measures per-request work that happens
// BEFORE ShardedContainmentService::BatchServe ever sees the batch: HTTP +
// JSON decode on the reactor thread, and the admission-queue wait until the
// micro-batcher formed the batch. Those spans carry absolute monotonic
// timestamps; the serve layer's trace assembly re-bases each trace onto the
// earliest server span so queue time shows up in total_ns and the span
// offsets stay consistent.
struct ServerSpan {
  Stage stage = Stage::kServerQueue;
  uint64_t start_ns = 0;  // absolute MonotonicNanos
  uint64_t end_ns = 0;

  friend bool operator==(const ServerSpan&, const ServerSpan&) = default;
};

// Per-request server spans for one BatchServe call, keyed by the request's
// index in the batch. Immutable once built; the batch executor installs it
// (ScopedBatchSpanSource) on the thread that calls BatchServe, and the serve
// layer reads it while assembling sampled/slow traces on that same thread.
// Like all tracing this is passive — responses never depend on it.
class BatchSpanSource {
 public:
  explicit BatchSpanSource(std::vector<std::vector<ServerSpan>> spans)
      : spans_(std::move(spans)) {}

  // Spans of the batch's request_index-th request; nullptr when none.
  const std::vector<ServerSpan>* SpansFor(size_t request_index) const {
    if (request_index >= spans_.size() || spans_[request_index].empty()) {
      return nullptr;
    }
    return &spans_[request_index];
  }

 private:
  std::vector<std::vector<ServerSpan>> spans_;
};

// The source installed on this thread, or nullptr (every non-server batch).
const BatchSpanSource* CurrentBatchSpanSource();

// Installs `source` as the current thread's batch span source for the
// enclosing scope (the server's BatchServe call).
class ScopedBatchSpanSource {
 public:
  explicit ScopedBatchSpanSource(const BatchSpanSource* source);
  ~ScopedBatchSpanSource();
  ScopedBatchSpanSource(const ScopedBatchSpanSource&) = delete;
  ScopedBatchSpanSource& operator=(const ScopedBatchSpanSource&) = delete;

 private:
  const BatchSpanSource* previous_;
};

}  // namespace obs
}  // namespace gbkmv

#endif  // GBKMV_OBS_TRACE_H_
