// Flight-recorder metrics: a registry of named counters, gauges and
// log-linear latency histograms shared by every layer of the stack
// (docs/observability.md).
//
// Design constraints, in order:
//   1. Hot-path cost — Counter::Add and Histogram::Record are one relaxed
//      atomic add on a per-thread stripe (plus a bit-scan for the bucket
//      index). No locks, no allocation, no stores shared between threads
//      that run concurrently, so instrumenting a query path never
//      serialises it — the bit-identical-results invariant
//      (docs/parallelism.md) is untouched because metrics never feed back
//      into any computation.
//   2. Runtime toggle — SetEnabled(false) turns every recording site into a
//      relaxed load + predicted branch. The gate lives in the registry, so
//      one switch covers every handle ever created from it.
//   3. Stable handles — Get{Counter,Gauge,Histogram} return pointers that
//      stay valid for the registry's lifetime; call sites resolve a handle
//      once (function-local static) and never look up by name again.
//
// Values are merged on read: Snapshot() sums the stripes and returns a
// plain-data MetricsSnapshot that the exporters (obs/export.h) format.
// Metric names follow the scheme in docs/observability.md
// (gbkmv_<subsystem>_<what>_<unit>, counters end in _total).

#ifndef GBKMV_OBS_METRICS_H_
#define GBKMV_OBS_METRICS_H_

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gbkmv {
namespace obs {

// Stripe count (power of two). Threads are assigned stripes round-robin on
// first use; with 16 stripes contention is negligible for any realistic
// worker count while a 529-bucket histogram stays ~68 KiB.
inline constexpr size_t kStripes = 16;

// The calling thread's stripe (assigned once, round-robin).
size_t StripeIndex();

class MetricsRegistry;

// Monotonically increasing sum. Striped; read = sum of stripes.
class Counter {
 public:
  void Add(uint64_t n = 1) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    cells_[StripeIndex()].value.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t Value() const;
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  Counter(std::string name, const std::atomic<bool>* enabled)
      : name_(std::move(name)), enabled_(enabled) {}

  struct alignas(64) Cell {
    std::atomic<uint64_t> value{0};
  };

  std::string name_;
  const std::atomic<bool>* enabled_;
  Cell cells_[kStripes];
};

// Point-in-time signed value (queue depths, resident entries). A single
// atomic — gauges are updated at bounded rates (per task, not per posting)
// and must never drift, so Add/Sub apply even while the registry is
// disabled; only the exported value honours the toggle.
class Gauge {
 public:
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }

  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  std::string name_;
  std::atomic<int64_t> value_{0};
};

// One histogram's merged contents (see Histogram for the bucket geometry).
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  // (bucket index, count) for every non-empty bucket, ascending index.
  std::vector<std::pair<uint32_t, uint64_t>> buckets;

  // Upper bound of the bucket where the cumulative count reaches
  // ceil(q * count) — an overestimate of the true quantile by at most one
  // log-linear bucket width (1/16 relative, docs/observability.md). 0 when
  // empty.
  double Quantile(double q) const;
  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  uint64_t OverflowCount() const;

  friend bool operator==(const HistogramSnapshot&,
                         const HistogramSnapshot&) = default;
};

// Log-linear histogram for latency-like uint64 values (nanoseconds by
// convention). Each power-of-two octave is split into 16 linear
// sub-buckets, so the bucket that holds a value bounds it within 1/16
// relative error; values >= 2^36 (~69 s in ns) land in one overflow
// bucket. Recording is a bit-scan + two striped relaxed adds.
class Histogram {
 public:
  static constexpr size_t kSubBucketBits = 4;
  static constexpr size_t kSubBuckets = size_t{1} << kSubBucketBits;  // 16
  // Octaves above the linear [0, 16) range: values up to 2^36 - 1 tracked.
  static constexpr size_t kOctaves = 32;
  static constexpr size_t kTrackedBuckets = kSubBuckets * (kOctaves + 1);
  static constexpr size_t kNumBuckets = kTrackedBuckets + 1;  // + overflow
  static constexpr uint64_t kOverflowBound = uint64_t{1}
                                             << (kSubBucketBits + kOctaves);

  static size_t BucketIndex(uint64_t value) {
    if (value < kSubBuckets) return static_cast<size_t>(value);
    const int exponent = 63 - std::countl_zero(value);  // floor(log2), >= 4
    if (exponent >= static_cast<int>(kSubBucketBits + kOctaves)) {
      return kTrackedBuckets;  // overflow
    }
    const uint64_t sub =
        (value >> (exponent - kSubBucketBits)) & (kSubBuckets - 1);
    const size_t octave = static_cast<size_t>(exponent) - kSubBucketBits + 1;
    return (octave << kSubBucketBits) + static_cast<size_t>(sub);
  }

  // Smallest value that maps to bucket `index` (overflow: kOverflowBound).
  static uint64_t BucketLowerBound(size_t index) {
    if (index >= kTrackedBuckets) return kOverflowBound;
    if (index < kSubBuckets) return index;
    const size_t octave = index >> kSubBucketBits;  // >= 1
    const uint64_t sub = index & (kSubBuckets - 1);
    return (kSubBuckets + sub) << (octave - 1);
  }

  // Exclusive upper bound of bucket `index` (overflow: UINT64_MAX).
  static uint64_t BucketUpperBound(size_t index) {
    if (index >= kTrackedBuckets) return UINT64_MAX;
    if (index + 1 >= kTrackedBuckets) return kOverflowBound;
    return BucketLowerBound(index + 1);
  }

  void Record(uint64_t value) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    Stripe& stripe = stripes_[StripeIndex()];
    stripe.buckets[BucketIndex(value)].fetch_add(1,
                                                 std::memory_order_relaxed);
    stripe.sum.fetch_add(value, std::memory_order_relaxed);
  }

  HistogramSnapshot Snapshot() const;
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  Histogram(std::string name, const std::atomic<bool>* enabled);

  struct Stripe {
    std::atomic<uint64_t> sum{0};
    std::unique_ptr<std::atomic<uint64_t>[]> buckets;  // kNumBuckets
  };

  std::string name_;
  const std::atomic<bool>* enabled_;
  Stripe stripes_[kStripes];
};

// Merged view of a whole registry at one instant (exporters format this;
// obs/export.cc round-trips it through JSON).
struct MetricsSnapshot {
  bool enabled = true;
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  friend bool operator==(const MetricsSnapshot&,
                         const MetricsSnapshot&) = default;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Returns the metric registered under `name`, creating it on first use.
  // Names must be unique across the three kinds (the exporters emit one
  // namespace). The returned pointer stays valid for the registry's
  // lifetime.
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  // Runtime toggle: while disabled, Counter::Add / Histogram::Record are a
  // relaxed load + branch and record nothing (gauges keep tracking, see
  // Gauge). Snapshot/export still work on whatever was recorded.
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  MetricsSnapshot Snapshot() const;

  // Zeroes every value (counters, gauges, histogram buckets); handles stay
  // valid. For tests and the bench A/B harness.
  void Reset();

 private:
  std::atomic<bool> enabled_{true};
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// The process-wide registry every built-in instrumentation site records
// into. Enabled by default (measured overhead budget in
// docs/observability.md); SetEnabled(false) turns the whole layer off.
MetricsRegistry& GlobalMetrics();

// Current resident set size of this process in bytes (/proc/self/statm);
// 0 where the platform offers no cheap readout.
uint64_t ReadProcessRssBytes();

// Refreshes the process-level gauges (gbkmv_process_rss_bytes) in
// `registry`. Called by the exporters right before they snapshot, so every
// Prometheus/JSON export carries a current RSS reading; cheap enough
// (one small proc read) for any export cadence.
void UpdateProcessGauges(MetricsRegistry& registry);

}  // namespace obs
}  // namespace gbkmv

#endif  // GBKMV_OBS_METRICS_H_
