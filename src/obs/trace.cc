#include "obs/trace.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"

namespace gbkmv {
namespace obs {

namespace {

thread_local SpanSink* t_span_sink = nullptr;
thread_local const BatchSpanSource* t_batch_span_source = nullptr;

// Slow-query visibility in the metrics plane too: a spike shows up on a
// dashboard counter even when nobody is reading the ring.
Counter* SlowQueryCounter() {
  static Counter* counter =
      GlobalMetrics().GetCounter("gbkmv_trace_slow_queries_total");
  return counter;
}

Counter* TraceCounter() {
  static Counter* counter =
      GlobalMetrics().GetCounter("gbkmv_trace_sampled_total");
  return counter;
}

}  // namespace

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kCacheLookup: return "cache_lookup";
    case Stage::kFanout: return "fanout";
    case Stage::kShardSearch: return "shard_search";
    case Stage::kMerge: return "merge";
    case Stage::kCacheFill: return "cache_fill";
    case Stage::kSketch: return "sketch";
    case Stage::kScan: return "scan";
    case Stage::kRefine: return "refine";
    case Stage::kServerParse: return "server_parse";
    case Stage::kServerQueue: return "server_queue";
  }
  return "unknown";
}

void Tracer::Configure(const TracerConfig& config) {
  std::lock_guard<std::mutex> lock(mutex_);
  config_ = config;
  config_.ring_capacity = std::max<size_t>(1, config_.ring_capacity);
  config_.slow_ring_capacity = std::max<size_t>(1,
                                                config_.slow_ring_capacity);
  ring_.clear();
  ring_.reserve(config_.ring_capacity);
  ring_next_ = 0;
  slow_ring_.clear();
  slow_ring_.reserve(config_.slow_ring_capacity);
  slow_next_ = 0;
  sample_every_.store(config_.sample_every, std::memory_order_relaxed);
  slow_ns_.store(config_.slow_query_ns, std::memory_order_relaxed);
  sample_counter_.store(0, std::memory_order_relaxed);
  active_.store(config_.sample_every > 0 || config_.slow_query_ns > 0,
                std::memory_order_relaxed);
}

TracerConfig Tracer::config() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return config_;
}

bool Tracer::ShouldSample() {
  const size_t every = sample_every_.load(std::memory_order_relaxed);
  if (every == 0) return false;
  return sample_counter_.fetch_add(1, std::memory_order_relaxed) % every ==
         0;
}

void Tracer::Record(QueryTrace trace) {
  const uint64_t slow_ns = slow_ns_.load(std::memory_order_relaxed);
  const bool slow = slow_ns > 0 && trace.total_ns >= slow_ns;
  if (!trace.sampled && !slow) return;

  if (trace.sampled) TraceCounter()->Add(1);
  if (slow) SlowQueryCounter()->Add(1);

  std::lock_guard<std::mutex> lock(mutex_);
  trace.id = next_id_++;
  if (slow) {
    ++slow_recorded_;
    if (slow_ring_.size() < config_.slow_ring_capacity) {
      slow_ring_.push_back(trace);
    } else {
      slow_ring_[slow_next_] = trace;
      slow_next_ = (slow_next_ + 1) % config_.slow_ring_capacity;
    }
  }
  if (trace.sampled) {
    ++recorded_;
    if (ring_.size() < config_.ring_capacity) {
      ring_.push_back(std::move(trace));
    } else {
      ring_[ring_next_] = std::move(trace);
      ring_next_ = (ring_next_ + 1) % config_.ring_capacity;
    }
  }
}

std::vector<QueryTrace> Tracer::Recent() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<QueryTrace> out;
  out.reserve(ring_.size());
  // Oldest first: the slot about to be overwritten is the oldest.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(ring_next_ + i) % ring_.size()]);
  }
  return out;
}

std::vector<QueryTrace> Tracer::SlowQueries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<QueryTrace> out;
  out.reserve(slow_ring_.size());
  for (size_t i = 0; i < slow_ring_.size(); ++i) {
    out.push_back(slow_ring_[(slow_next_ + i) % slow_ring_.size()]);
  }
  return out;
}

uint64_t Tracer::traces_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recorded_;
}

uint64_t Tracer::slow_queries_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slow_recorded_;
}

Tracer& GlobalTracer() {
  static Tracer tracer;
  return tracer;
}

SpanSink* CurrentSpanSink() { return t_span_sink; }

ScopedSpanSink::ScopedSpanSink(SpanSink* sink) : previous_(t_span_sink) {
  t_span_sink = sink;
}

ScopedSpanSink::~ScopedSpanSink() { t_span_sink = previous_; }

const BatchSpanSource* CurrentBatchSpanSource() {
  return t_batch_span_source;
}

ScopedBatchSpanSource::ScopedBatchSpanSource(const BatchSpanSource* source)
    : previous_(t_batch_span_source) {
  t_batch_span_source = source;
}

ScopedBatchSpanSource::~ScopedBatchSpanSource() {
  t_batch_span_source = previous_;
}

}  // namespace obs
}  // namespace gbkmv
