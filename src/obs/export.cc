#include "obs/export.h"

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace gbkmv {
namespace obs {

namespace {

void AppendEscaped(const std::string& s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned char>(c));
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  AppendEscaped(s, out);
  out->push_back('"');
}

void AppendDouble(double value, std::string* out) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  *out += buf;
}

// --- minimal JSON parser (the exporter's own dialect) ----------------------
//
// Enough JSON to read back what SnapshotToJson writes: objects, arrays,
// strings without exotic escapes, integers (exact via unsigned long long),
// booleans. Anything else is a parse error — this is a round-trip decoder,
// not a general library.

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool error() const { return error_; }
  const std::string& message() const { return message_; }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    Fail(std::string("expected '") + c + "'");
    return false;
  }

  bool Peek(char c) {
    SkipWs();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool AtEnd() {
    SkipWs();
    return pos_ >= text_.size();
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char e = text_[pos_++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case '/': out->push_back('/'); break;
          default:
            Fail("unsupported escape");
            return false;
        }
      } else {
        out->push_back(c);
      }
    }
    if (pos_ >= text_.size()) {
      Fail("unterminated string");
      return false;
    }
    ++pos_;  // closing quote
    return true;
  }

  bool ParseUint64(uint64_t* out) {
    SkipWs();
    const size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (pos_ == start) {
      Fail("expected unsigned integer");
      return false;
    }
    errno = 0;
    *out = std::strtoull(text_.c_str() + start, nullptr, 10);
    if (errno == ERANGE) {
      Fail("integer out of range");
      return false;
    }
    return true;
  }

  bool ParseInt64(int64_t* out) {
    SkipWs();
    bool negative = false;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      negative = true;
      ++pos_;
    }
    uint64_t magnitude = 0;
    if (!ParseUint64(&magnitude)) return false;
    if (negative) {
      if (magnitude > static_cast<uint64_t>(INT64_MAX) + 1) {
        Fail("integer out of range");
        return false;
      }
      *out = static_cast<int64_t>(~magnitude + 1);
    } else {
      if (magnitude > static_cast<uint64_t>(INT64_MAX)) {
        Fail("integer out of range");
        return false;
      }
      *out = static_cast<int64_t>(magnitude);
    }
    return true;
  }

  bool ParseBool(bool* out) {
    SkipWs();
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      *out = true;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      *out = false;
      return true;
    }
    Fail("expected boolean");
    return false;
  }

  // Calls `field(key)` for each member; `field` must consume the value.
  template <typename FieldFn>
  bool ParseObject(FieldFn field) {
    if (!Consume('{')) return false;
    if (Peek('}')) return Consume('}');
    while (true) {
      std::string key;
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return false;
      if (!field(key)) return false;
      if (Peek(',')) {
        Consume(',');
        continue;
      }
      return Consume('}');
    }
  }

  // Calls `element()` for each array element; `element` consumes the value.
  template <typename ElementFn>
  bool ParseArray(ElementFn element) {
    if (!Consume('[')) return false;
    if (Peek(']')) return Consume(']');
    while (true) {
      if (!element()) return false;
      if (Peek(',')) {
        Consume(',');
        continue;
      }
      return Consume(']');
    }
  }

  bool Fail(const std::string& why) {
    if (!error_) {
      error_ = true;
      message_ = why + " at offset " + std::to_string(pos_);
    }
    return false;
  }

 private:
  const std::string& text_;
  size_t pos_ = 0;
  bool error_ = false;
  std::string message_;
};

bool ParseHistogramSnapshot(JsonParser* p, HistogramSnapshot* out) {
  return p->ParseObject([&](const std::string& key) {
    if (key == "count") return p->ParseUint64(&out->count);
    if (key == "sum") return p->ParseUint64(&out->sum);
    if (key == "buckets") {
      return p->ParseArray([&] {
        // [index, count]
        uint64_t index = 0;
        uint64_t bucket_count = 0;
        if (!p->Consume('[')) return false;
        if (!p->ParseUint64(&index)) return false;
        if (!p->Consume(',')) return false;
        if (!p->ParseUint64(&bucket_count)) return false;
        if (!p->Consume(']')) return false;
        out->buckets.emplace_back(static_cast<uint32_t>(index), bucket_count);
        return true;
      });
    }
    return p->Fail("unknown histogram field '" + key + "'");
  });
}

void AppendHistogramJson(const HistogramSnapshot& h, std::string* out) {
  *out += "{\"count\":" + std::to_string(h.count);
  *out += ",\"sum\":" + std::to_string(h.sum);
  *out += ",\"buckets\":[";
  bool first = true;
  for (const auto& [index, count] : h.buckets) {
    if (!first) out->push_back(',');
    first = false;
    *out += "[" + std::to_string(index) + "," + std::to_string(count) + "]";
  }
  *out += "]}";
}

}  // namespace

std::string SnapshotToPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  out.reserve(4096);
  for (const auto& [name, value] : snapshot.counters) {
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    out += "# TYPE " + name + " histogram\n";
    uint64_t cumulative = 0;
    for (const auto& [index, count] : h.buckets) {
      cumulative += count;
      out += name + "_bucket{le=\"";
      if (index >= Histogram::kTrackedBuckets) {
        out += "+Inf";
      } else {
        out += std::to_string(Histogram::BucketUpperBound(index));
      }
      out += "\"} " + std::to_string(cumulative) + "\n";
    }
    // The +Inf bucket is mandatory and must equal _count, even when the
    // overflow bucket is empty.
    if (h.buckets.empty() ||
        h.buckets.back().first < Histogram::kTrackedBuckets) {
      out += name + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    }
    out += name + "_sum " + std::to_string(h.sum) + "\n";
    out += name + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

std::string SnapshotToJson(const MetricsSnapshot& snapshot) {
  std::string out;
  out.reserve(4096);
  out += "{\"schema\":\"gbkmv_metrics_v1\"";
  out += ",\"enabled\":";
  out += snapshot.enabled ? "true" : "false";
  out += ",\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(name, &out);
    out += ":" + std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(name, &out);
    out += ":" + std::to_string(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(name, &out);
    out.push_back(':');
    AppendHistogramJson(h, &out);
  }
  out += "}}";
  return out;
}

Result<MetricsSnapshot> SnapshotFromJson(const std::string& json) {
  JsonParser parser(json);
  MetricsSnapshot snapshot;
  bool schema_seen = false;
  const bool ok = parser.ParseObject([&](const std::string& key) {
    if (key == "schema") {
      std::string schema;
      if (!parser.ParseString(&schema)) return false;
      if (schema != "gbkmv_metrics_v1") {
        return parser.Fail("unsupported schema '" + schema + "'");
      }
      schema_seen = true;
      return true;
    }
    if (key == "enabled") return parser.ParseBool(&snapshot.enabled);
    if (key == "counters") {
      return parser.ParseObject([&](const std::string& name) {
        uint64_t value = 0;
        if (!parser.ParseUint64(&value)) return false;
        snapshot.counters.emplace(name, value);
        return true;
      });
    }
    if (key == "gauges") {
      return parser.ParseObject([&](const std::string& name) {
        int64_t value = 0;
        if (!parser.ParseInt64(&value)) return false;
        snapshot.gauges.emplace(name, value);
        return true;
      });
    }
    if (key == "histograms") {
      return parser.ParseObject([&](const std::string& name) {
        HistogramSnapshot h;
        if (!ParseHistogramSnapshot(&parser, &h)) return false;
        snapshot.histograms.emplace(name, std::move(h));
        return true;
      });
    }
    return parser.Fail("unknown field '" + key + "'");
  });
  if (!ok || parser.error()) {
    return Status::Corruption("metrics JSON: " + parser.message());
  }
  if (!parser.AtEnd()) {
    return Status::Corruption("metrics JSON: trailing data");
  }
  if (!schema_seen) {
    return Status::Corruption("metrics JSON: missing schema field");
  }
  return snapshot;
}

std::string TracesToJson(const std::vector<QueryTrace>& traces) {
  std::string out;
  out.reserve(1024);
  out.push_back('[');
  bool first_trace = true;
  for (const QueryTrace& t : traces) {
    if (!first_trace) out.push_back(',');
    first_trace = false;
    out += "{\"id\":" + std::to_string(t.id);
    out += ",\"total_ns\":" + std::to_string(t.total_ns);
    out += ",\"threshold\":";
    AppendDouble(t.threshold, &out);
    out += ",\"num_hits\":" + std::to_string(t.num_hits);
    out += ",\"shards_queried\":" + std::to_string(t.shards_queried);
    out += ",\"cache_hit\":";
    out += t.cache_hit ? "true" : "false";
    out += ",\"sampled\":";
    out += t.sampled ? "true" : "false";
    out += ",\"spans\":[";
    bool first_span = true;
    for (const TraceSpan& s : t.spans) {
      if (!first_span) out.push_back(',');
      first_span = false;
      out += "{\"stage\":\"";
      out += StageName(s.stage);
      out += "\"";
      if (s.shard >= 0) out += ",\"shard\":" + std::to_string(s.shard);
      out += ",\"start_ns\":" + std::to_string(s.start_ns);
      out += ",\"duration_ns\":" + std::to_string(s.duration_ns);
      out += "}";
    }
    out += "]}";
  }
  out.push_back(']');
  return out;
}

std::string DumpToJson(const MetricsRegistry& registry, const Tracer& tracer) {
  std::string out;
  out.reserve(8192);
  out += "{\"schema\":\"gbkmv_metrics_dump_v1\"";
  out += ",\"metrics\":";
  out += SnapshotToJson(registry.Snapshot());
  out += ",\"traces\":";
  out += TracesToJson(tracer.Recent());
  out += ",\"slow_queries\":";
  out += TracesToJson(tracer.SlowQueries());
  out += "}\n";
  return out;
}

Status WriteFileAtomic(const std::string& path, const std::string& contents) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("open " + tmp + ": " + std::strerror(errno));
  }
  const size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (written != contents.size() || !flushed) {
    std::remove(tmp.c_str());
    return Status::IOError("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("rename " + tmp + " -> " + path + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

PeriodicMetricsDumper::PeriodicMetricsDumper(std::string path,
                                             double interval_seconds)
    : path_(std::move(path)),
      interval_seconds_(interval_seconds > 0 ? interval_seconds : 1.0) {
  thread_ = std::thread([this] { Loop(); });
}

PeriodicMetricsDumper::~PeriodicMetricsDumper() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  // Final flush so short-lived runs still leave a dump behind.
  FlushNow();
}

Status PeriodicMetricsDumper::FlushNow() {
  UpdateProcessGauges(GlobalMetrics());
  Status status =
      WriteFileAtomic(path_, DumpToJson(GlobalMetrics(), GlobalTracer()));
  std::lock_guard<std::mutex> lock(mutex_);
  last_status_ = status;
  return last_status_;
}

void PeriodicMetricsDumper::Loop() {
  const auto interval = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::duration<double>(interval_seconds_));
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    if (cv_.wait_for(lock, interval, [this] { return stop_; })) break;
    lock.unlock();
    FlushNow();
    lock.lock();
  }
}

}  // namespace obs
}  // namespace gbkmv
