#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#if defined(__linux__)
#include <unistd.h>
#endif

namespace gbkmv {
namespace obs {

size_t StripeIndex() {
  static std::atomic<size_t> next{0};
  thread_local const size_t stripe =
      next.fetch_add(1, std::memory_order_relaxed) & (kStripes - 1);
  return stripe;
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Cell& cell : cells_) {
    total += cell.value.load(std::memory_order_relaxed);
  }
  return total;
}

Histogram::Histogram(std::string name, const std::atomic<bool>* enabled)
    : name_(std::move(name)), enabled_(enabled) {
  for (Stripe& stripe : stripes_) {
    stripe.buckets =
        std::make_unique<std::atomic<uint64_t>[]>(kNumBuckets);
    for (size_t b = 0; b < kNumBuckets; ++b) {
      stripe.buckets[b].store(0, std::memory_order_relaxed);
    }
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    uint64_t count = 0;
    for (const Stripe& stripe : stripes_) {
      count += stripe.buckets[b].load(std::memory_order_relaxed);
    }
    if (count > 0) {
      snapshot.buckets.emplace_back(static_cast<uint32_t>(b), count);
      snapshot.count += count;
    }
  }
  for (const Stripe& stripe : stripes_) {
    snapshot.sum += stripe.sum.load(std::memory_order_relaxed);
  }
  return snapshot;
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t target = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(count))));
  uint64_t cumulative = 0;
  for (const auto& [index, bucket_count] : buckets) {
    cumulative += bucket_count;
    if (cumulative >= target) {
      if (index >= Histogram::kTrackedBuckets) {
        // Overflow: the true value is only known to be >= the bound.
        return static_cast<double>(Histogram::kOverflowBound);
      }
      return static_cast<double>(Histogram::BucketUpperBound(index));
    }
  }
  return static_cast<double>(
      Histogram::BucketUpperBound(buckets.back().first));
}

uint64_t HistogramSnapshot::OverflowCount() const {
  for (const auto& [index, bucket_count] : buckets) {
    if (index >= Histogram::kTrackedBuckets) return bucket_count;
  }
  return 0;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::unique_ptr<Counter>(
                          new Counter(std::string(name), &enabled_)))
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name),
                      std::unique_ptr<Gauge>(new Gauge(std::string(name))))
             .first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::unique_ptr<Histogram>(
                          new Histogram(std::string(name), &enabled_)))
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snapshot;
  snapshot.enabled = enabled();
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace(name, counter->Value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace(name, gauge->Value());
  }
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.emplace(name, histogram->Snapshot());
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) {
    for (Counter::Cell& cell : counter->cells_) {
      cell.value.store(0, std::memory_order_relaxed);
    }
  }
  for (auto& [name, gauge] : gauges_) {
    gauge->Set(0);
  }
  for (auto& [name, histogram] : histograms_) {
    for (Histogram::Stripe& stripe : histogram->stripes_) {
      stripe.sum.store(0, std::memory_order_relaxed);
      for (size_t b = 0; b < Histogram::kNumBuckets; ++b) {
        stripe.buckets[b].store(0, std::memory_order_relaxed);
      }
    }
  }
}

MetricsRegistry& GlobalMetrics() {
  static MetricsRegistry registry;
  return registry;
}

uint64_t ReadProcessRssBytes() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long vm_pages = 0;
  unsigned long long rss_pages = 0;
  const int fields = std::fscanf(f, "%llu %llu", &vm_pages, &rss_pages);
  std::fclose(f);
  if (fields != 2) return 0;
  const long page = sysconf(_SC_PAGESIZE);
  return rss_pages * static_cast<uint64_t>(page > 0 ? page : 4096);
#else
  return 0;
#endif
}

void UpdateProcessGauges(MetricsRegistry& registry) {
  const uint64_t rss = ReadProcessRssBytes();
  if (rss > 0) {
    registry.GetGauge("gbkmv_process_rss_bytes")
        ->Set(static_cast<int64_t>(rss));
  }
}

}  // namespace obs
}  // namespace gbkmv
