// Public facade: build any containment-similarity search method over a
// dataset with one call. This is the API the examples and the experiment
// harnesses use.
//
// Typical usage:
//
//   auto dataset = gbkmv::Dataset::Create(std::move(records));
//   gbkmv::SearcherConfig config;                 // GB-KMV, 10% space
//   auto searcher = gbkmv::BuildSearcher(*dataset, config);
//
//   // Query API v2 (docs/query_api.md): scored, top-k, stats-carrying.
//   gbkmv::SearchOptions options;
//   options.top_k = 10;
//   auto response = (*searcher)->SearchQ(
//       gbkmv::MakeQueryRequest(query, /*threshold=*/0.5, options),
//       gbkmv::ThreadLocalQueryContext());
//   for (const auto& hit : response.hits) { /* hit.id, hit.score */ }
//
//   // Legacy boolean path (thin wrapper over SearchQ):
//   auto ids = (*searcher)->Search(query, /*threshold=*/0.5);

#ifndef GBKMV_CORE_CONTAINMENT_H_
#define GBKMV_CORE_CONTAINMENT_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "data/dataset.h"
#include "index/gbkmv_index.h"
#include "index/inverted_index.h"
#include "index/lsh_ensemble.h"
#include "index/searcher.h"

namespace gbkmv {

enum class SearchMethod {
  kGbKmv,         // the paper's method, cost-model buffer (default)
  kGKmv,          // GB-KMV with buffer disabled (ablation)
  kKmv,           // plain KMV with Theorem-1 allocation (ablation)
  kLshEnsemble,   // Zhu et al. baseline
  kMinHashLsh,    // un-partitioned MinHash LSH baseline
  kAsymmetricMinHash,  // Shrivastava & Li padding baseline
  kPPJoin,        // exact (prefix + positional filtering)
  kFreqSet,       // exact (inverted-list ScanCount)
  kBruteForce,    // exact (linear scan), ground-truth oracle
};

// Parses a method name, case-insensitive. Accepted spellings (exactly the
// comparisons below — keep this list in sync with the parser):
//   "gb-kmv" | "gbkmv"                     -> kGbKmv
//   "g-kmv" | "gkmv"                       -> kGKmv
//   "kmv"                                  -> kKmv
//   "lsh-e" | "lshe" | "lsh-ensemble"      -> kLshEnsemble
//   "minhash-lsh" | "mh-lsh"               -> kMinHashLsh
//   "a-mh" | "amh" | "asymmetric-minhash"  -> kAsymmetricMinHash
//   "ppjoin" | "ppjoin*"                   -> kPPJoin
//   "freqset"                              -> kFreqSet
//   "brute-force" | "bruteforce" | "exact" -> kBruteForce
// Returns InvalidArgument for anything else.
Result<SearchMethod> ParseSearchMethod(const std::string& name);

// Parses a posting-store backend name, case-insensitive:
//   "flat" -> kFlat, "compressed" -> kCompressed.
// Returns InvalidArgument for anything else.
Result<PostingStoreKind> ParsePostingStoreKind(const std::string& name);

// Record-independent query options (query API v2); combine with a record +
// threshold via MakeQueryRequest to issue requests. Field semantics in
// index/query.h.
struct SearchOptions {
  size_t top_k = 0;         // 0 = all qualifying records
  bool want_scores = true;
  bool want_stats = false;
};

// Builds a QueryRequest from the facade's option struct. `record` is
// borrowed and must outlive the request.
QueryRequest MakeQueryRequest(const Record& record, double threshold,
                              const SearchOptions& options);

// How the sharded service (src/serve) splits a dataset across shards.
enum class ShardPartitioner {
  kHash,            // shard = content-hash(record) mod S — uniform by count
  kSizeStratified,  // size-sorted round robin — uniform by size profile
};

// Parses a partitioner name, case-insensitive: "hash" -> kHash,
// "size" | "size-stratified" -> kSizeStratified.
Result<ShardPartitioner> ParseShardPartitioner(const std::string& name);

// Every knob of the sharded service in one documented struct (consumed by
// BuildShardedService / ShardedContainmentService::{Build,Load}; ignored by
// plain BuildSearcher). Semantics in docs/sharding.md; the lifecycle knobs
// (compaction_*, tombstone_purge_threshold) are covered by the "Shard
// lifecycle" section there.
struct ServiceOptions {
  // Number of index shards; clamped to the record count. 0 behaves as 1.
  size_t num_shards = 1;
  ShardPartitioner partitioner = ShardPartitioner::kHash;
  // Query-result cache capacity in entries; 0 disables the cache.
  size_t cache_capacity = 0;
  // Sketch budget of the mutable ingest shard in element units;
  // 0 = space_ratio * total_elements / num_shards (min 1024).
  uint64_t ingest_budget_units = 0;
  // Promote the ingest shard to an immutable shard (in the background) once
  // it holds this many records; 0 = only on explicit Promote().
  size_t auto_promote_records = 0;
  // Resident-shard budget for services restored with Load (docs/sharding.md
  // "Larger than RAM"). When either limit is non-zero, Load defers every
  // shard: the manifest alone is read up front and each shard's snapshot is
  // mapped (or loaded) on the first query that needs it, with the
  // least-recently-used resident shards unmapped once the budget is
  // exceeded. 0/0 (default) keeps the eager behaviour: all shards load
  // inside Load. Ignored by Build (built shards have no backing file to
  // reactivate from).
  size_t max_resident_shards = 0;
  uint64_t max_resident_bytes = 0;
  // Tiered compaction (docs/sharding.md "Shard lifecycle"). After every
  // promotion the service scans the promoted shards newest-to-oldest and
  // accumulates a "run": shard j-1 joins while size(j-1) <=
  // compaction_tier_ratio * (run size so far). A run of at least
  // compaction_min_shards triggers a background merge-compaction of exactly
  // those shards. 0 disables automatic compaction (explicit Compact() still
  // works).
  double compaction_tier_ratio = 0.0;
  size_t compaction_min_shards = 2;
  // Rewrite (purge) a promoted shard in the background once its tombstone
  // fraction num_deleted / num_rows reaches this threshold; 0 disables
  // automatic purging (tombstones still purge on every merge).
  double tombstone_purge_threshold = 0.0;
};

// Deprecated alias (one PR): the knobs used to be named after sharding
// alone; the lifecycle work folded every service knob into ServiceOptions.
using ShardedOptions = ServiceOptions;

struct SearcherConfig {
  SearchMethod method = SearchMethod::kGbKmv;
  // Sketch budget as a fraction of total elements (GB-KMV/G-KMV/KMV).
  double space_ratio = 0.10;
  // Buffer width for GB-KMV; kAutoBuffer = use the cost model.
  size_t buffer_bits = GbKmvIndexOptions::kAutoBuffer;
  // LSH-E knobs (paper defaults).
  size_t lshe_num_hashes = 256;
  size_t lshe_num_partitions = 32;
  uint64_t seed = kDefaultSketchSeed;
  // Posting-list backend of the inverted-index methods (FreqSet): kFlat for
  // the fastest scans, kCompressed for delta + bit-packed blocks at a
  // fraction of the footprint. Results are bit-identical either way; other
  // methods ignore the knob.
  PostingStoreKind posting_store = PostingStoreKind::kFlat;
  // Build parallelism (sharded builds merge in shard order, so the index is
  // byte-identical for any value). 0 = DefaultThreads(), 1 = serial.
  size_t num_threads = 0;
  // Sharded-serving layer (BuildShardedService only).
  ServiceOptions sharded;
};

// Builds the configured searcher. The dataset must outlive the searcher.
Result<std::unique_ptr<ContainmentSearcher>> BuildSearcher(
    const Dataset& dataset, const SearcherConfig& config);

}  // namespace gbkmv

#endif  // GBKMV_CORE_CONTAINMENT_H_
