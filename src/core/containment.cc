#include "core/containment.h"

#include <algorithm>
#include <cctype>

#include "common/thread_pool.h"
#include "index/asymmetric_minhash.h"
#include "index/brute_force.h"
#include "index/freqset.h"
#include "index/minhash_lsh.h"
#include "index/ppjoin.h"

namespace gbkmv {

Result<SearchMethod> ParseSearchMethod(const std::string& name) {
  std::string lower = name;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "gb-kmv" || lower == "gbkmv") return SearchMethod::kGbKmv;
  if (lower == "g-kmv" || lower == "gkmv") return SearchMethod::kGKmv;
  if (lower == "kmv") return SearchMethod::kKmv;
  if (lower == "lsh-e" || lower == "lshe" || lower == "lsh-ensemble") {
    return SearchMethod::kLshEnsemble;
  }
  if (lower == "minhash-lsh" || lower == "mh-lsh") {
    return SearchMethod::kMinHashLsh;
  }
  if (lower == "a-mh" || lower == "amh" || lower == "asymmetric-minhash") {
    return SearchMethod::kAsymmetricMinHash;
  }
  if (lower == "ppjoin" || lower == "ppjoin*") return SearchMethod::kPPJoin;
  if (lower == "freqset") return SearchMethod::kFreqSet;
  if (lower == "brute-force" || lower == "bruteforce" || lower == "exact") {
    return SearchMethod::kBruteForce;
  }
  return Status::InvalidArgument("unknown search method: " + name);
}

Result<PostingStoreKind> ParsePostingStoreKind(const std::string& name) {
  std::string lower = name;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "flat") return PostingStoreKind::kFlat;
  if (lower == "compressed") return PostingStoreKind::kCompressed;
  return Status::InvalidArgument("unknown posting store: " + name);
}

Result<ShardPartitioner> ParseShardPartitioner(const std::string& name) {
  std::string lower = name;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "hash") return ShardPartitioner::kHash;
  if (lower == "size" || lower == "size-stratified") {
    return ShardPartitioner::kSizeStratified;
  }
  return Status::InvalidArgument("unknown shard partitioner: " + name);
}

QueryRequest MakeQueryRequest(const Record& record, double threshold,
                              const SearchOptions& options) {
  QueryRequest request(record, threshold);
  request.top_k = options.top_k;
  request.want_scores = options.want_scores;
  request.want_stats = options.want_stats;
  return request;
}

Result<std::unique_ptr<ContainmentSearcher>> BuildSearcher(
    const Dataset& dataset, const SearcherConfig& config) {
  switch (config.method) {
    case SearchMethod::kGbKmv:
    case SearchMethod::kGKmv: {
      GbKmvIndexOptions options;
      options.space_ratio = config.space_ratio;
      options.buffer_bits = config.method == SearchMethod::kGKmv
                                ? 0
                                : config.buffer_bits;
      options.seed = config.seed;
      options.num_threads = config.num_threads;
      Result<std::unique_ptr<GbKmvIndexSearcher>> s =
          GbKmvIndexSearcher::Create(dataset, options);
      if (!s.ok()) return s.status();
      return std::unique_ptr<ContainmentSearcher>(std::move(s.value()));
    }
    case SearchMethod::kKmv: {
      Result<std::unique_ptr<KmvSearcher>> s =
          KmvSearcher::Create(dataset, config.space_ratio, config.seed,
                              config.num_threads);
      if (!s.ok()) return s.status();
      return std::unique_ptr<ContainmentSearcher>(std::move(s.value()));
    }
    case SearchMethod::kLshEnsemble: {
      LshEnsembleOptions options;
      options.num_hashes = config.lshe_num_hashes;
      options.num_partitions = config.lshe_num_partitions;
      options.seed = config.seed;
      options.num_threads = config.num_threads;
      Result<std::unique_ptr<LshEnsembleSearcher>> s =
          LshEnsembleSearcher::Create(dataset, options);
      if (!s.ok()) return s.status();
      return std::unique_ptr<ContainmentSearcher>(std::move(s.value()));
    }
    case SearchMethod::kMinHashLsh: {
      MinHashLshOptions options;
      options.num_hashes = config.lshe_num_hashes;
      options.seed = config.seed;
      options.num_threads = config.num_threads;
      Result<std::unique_ptr<MinHashLshSearcher>> s =
          MinHashLshSearcher::Create(dataset, options);
      if (!s.ok()) return s.status();
      return std::unique_ptr<ContainmentSearcher>(std::move(s.value()));
    }
    case SearchMethod::kAsymmetricMinHash: {
      AsymmetricMinHashOptions options;
      options.num_hashes = config.lshe_num_hashes;
      options.seed = config.seed;
      options.num_threads = config.num_threads;
      Result<std::unique_ptr<AsymmetricMinHashSearcher>> s =
          AsymmetricMinHashSearcher::Create(dataset, options);
      if (!s.ok()) return s.status();
      return std::unique_ptr<ContainmentSearcher>(std::move(s.value()));
    }
    case SearchMethod::kPPJoin: {
      const std::unique_ptr<ThreadPool> pool =
          MakeBuildPool(config.num_threads, dataset.size());
      return std::unique_ptr<ContainmentSearcher>(
          std::make_unique<PPJoinSearcher>(dataset, pool.get()));
    }
    case SearchMethod::kFreqSet: {
      const std::unique_ptr<ThreadPool> pool =
          MakeBuildPool(config.num_threads, dataset.size());
      return std::unique_ptr<ContainmentSearcher>(
          std::make_unique<FreqSetSearcher>(dataset, pool.get(),
                                            config.posting_store));
    }
    case SearchMethod::kBruteForce:
      return std::unique_ptr<ContainmentSearcher>(
          std::make_unique<BruteForceSearcher>(dataset));
  }
  return Status::InvalidArgument("unhandled search method");
}

}  // namespace gbkmv
