#include "index/minhash_lsh.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/hash.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "sketch/parallel_build.h"

namespace gbkmv {

double LshCollisionProbability(double jaccard, size_t bands, size_t rows) {
  if (bands == 0 || rows == 0) return 0.0;
  const double p_band = std::pow(jaccard, static_cast<double>(rows));
  return 1.0 - std::pow(1.0 - p_band, static_cast<double>(bands));
}

BandParams OptimalBandParams(size_t signature_size, double jaccard_threshold,
                             const std::vector<size_t>& row_choices) {
  GBKMV_CHECK(signature_size > 0);
  const double s_star = std::clamp(jaccard_threshold, 0.0, 1.0);
  BandParams best;
  double best_cost = std::numeric_limits<double>::infinity();
  constexpr int kGrid = 128;
  for (size_t rows : row_choices) {
    if (rows == 0 || rows > signature_size) continue;
    const size_t bands = signature_size / rows;
    if (bands == 0) continue;
    // FP: collisions below the threshold; FN: misses above it.
    double fp = 0.0, fn = 0.0;
    for (int g = 0; g < kGrid; ++g) {
      const double s = (g + 0.5) / kGrid;
      const double p = LshCollisionProbability(s, bands, rows);
      if (s < s_star) {
        fp += p;
      } else {
        fn += 1.0 - p;
      }
    }
    const double cost = (fp + fn) / kGrid;
    if (cost < best_cost) {
      best_cost = cost;
      best = {bands, rows};
    }
  }
  GBKMV_CHECK(best.bands > 0);
  return best;
}

std::vector<size_t> DefaultRowChoices(size_t signature_size) {
  std::vector<size_t> rows;
  for (size_t r = 1; r <= signature_size; r *= 2) rows.push_back(r);
  return rows;
}

uint64_t MinHashLshIndex::BandHash(const MinHashSignature& sig, size_t start,
                                   size_t rows) {
  uint64_t h = 0x9ae16a3b2f90404fULL;
  for (size_t i = 0; i < rows; ++i) {
    h = Mix64(h ^ sig.value(start + i));
  }
  return h;
}

MinHashLshIndex::MinHashLshIndex(
    const std::vector<MinHashSignature>& signatures,
    const std::vector<RecordId>& ids, size_t signature_size,
    const std::vector<size_t>& row_choices)
    : signature_size_(signature_size), row_choices_(row_choices) {
  GBKMV_CHECK(signatures.size() == ids.size());
  for (const MinHashSignature& sig : signatures) {
    GBKMV_CHECK(sig.size() == signature_size_);
  }
  per_row_.reserve(row_choices_.size());
  for (size_t rows : row_choices_) {
    GBKMV_CHECK(rows >= 1 && rows <= signature_size_);
    RowTables rt;
    rt.rows = rows;
    rt.bands = signature_size_ / rows;
    rt.tables.reserve(rt.bands);
    // Band hashes are computed once into a scratch column so the two-pass
    // flat build does not re-mix the signatures.
    std::vector<uint64_t> column(signatures.size());
    for (size_t band = 0; band < rt.bands; ++band) {
      for (size_t s = 0; s < signatures.size(); ++s) {
        column[s] = BandHash(signatures[s], band * rows, rows);
      }
      rt.tables.push_back(FlatHashPostings::Build([&](const auto& fn) {
        for (size_t s = 0; s < signatures.size(); ++s) {
          fn(column[s], ids[s]);
        }
      }));
    }
    per_row_.push_back(std::move(rt));
  }
}

std::vector<RecordId> MinHashLshIndex::Query(
    const MinHashSignature& query_sig, const BandParams& params,
    uint64_t* bucket_entries_scanned) const {
  GBKMV_CHECK(query_sig.size() == signature_size_);
  const RowTables* rt = nullptr;
  for (const RowTables& candidate : per_row_) {
    if (candidate.rows == params.rows) {
      rt = &candidate;
      break;
    }
  }
  GBKMV_CHECK(rt != nullptr);
  const size_t bands = std::min(params.bands, rt->bands);
  std::vector<RecordId> out;
  for (size_t band = 0; band < bands; ++band) {
    const uint64_t h = BandHash(query_sig, band * rt->rows, rt->rows);
    const std::span<const RecordId> bucket = rt->tables[band].Find(h);
    if (bucket_entries_scanned != nullptr) {
      *bucket_entries_scanned += bucket.size();
    }
    out.insert(out.end(), bucket.begin(), bucket.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

uint64_t MinHashLshIndex::SpaceUnits() const {
  uint64_t units = 0;
  for (const RowTables& rt : per_row_) {
    for (const FlatHashPostings& table : rt.tables) {
      units += table.SpaceUnits();
    }
  }
  return units;
}

Result<std::unique_ptr<MinHashLshSearcher>> MinHashLshSearcher::Create(
    const Dataset& dataset, const MinHashLshOptions& options) {
  if (options.num_hashes == 0) {
    return Status::InvalidArgument("num_hashes must be positive");
  }
  if (dataset.empty()) {
    return Status::InvalidArgument("dataset is empty");
  }
  std::unique_ptr<MinHashLshSearcher> s(
      new MinHashLshSearcher(dataset, options));
  if (options.max_record_size_hint > 0) {
    s->max_record_size_ = options.max_record_size_hint;
  } else {
    for (const Record& r : dataset.records()) {
      s->max_record_size_ = std::max(s->max_record_size_, r.size());
    }
  }
  const std::unique_ptr<ThreadPool> pool =
      MakeBuildPool(options.num_threads, dataset.size());
  s->signatures_ = BuildSketchesParallel(dataset, s->family_, pool.get());
  std::vector<RecordId> ids(dataset.size());
  std::iota(ids.begin(), ids.end(), 0);
  s->index_ = std::make_unique<MinHashLshIndex>(
      s->signatures_, ids, options.num_hashes,
      DefaultRowChoices(options.num_hashes));
  return s;
}

QueryResponse MinHashLshSearcher::SearchQ(const QueryRequest& request,
                                          QueryContext& ctx) const {
  QueryResponse response;
  const Record& query = *request.record;
  if (query.empty()) return response;
  const size_t q = query.size();
  // Containment -> Jaccard with the dataset-wide upper bound (Eq. 13).
  // Thresholds above 1 cannot be met; clamp tiny ones so the band optimiser
  // stays meaningful.
  const double s_star =
      ContainmentToJaccard(request.threshold, q, max_record_size_);
  if (s_star > 1.0) return response;
  const MinHashSignature query_sig = MinHashSignature::Build(query, family_);
  const BandParams params =
      OptimalBandParams(options_.num_hashes,
                        std::clamp(s_star, 1e-6, 1.0), index_->row_choices());
  const std::vector<RecordId> candidates =
      index_->Query(query_sig, params, &response.stats.postings_scanned);
  response.stats.candidates_generated = candidates.size();
  HitCollector collector(request, ctx, &response);
  // Candidates are the answer (no verification); the score re-estimates
  // containment from the stored signature and the record's true size, and
  // is materialised only when the caller asked for scores or ranking.
  const bool need_scores = request.want_scores || request.top_k > 0;
  for (RecordId id : candidates) {
    const double estimate =
        need_scores ? EstimateContainmentMinHash(query_sig, signatures_[id],
                                                 q, dataset_.record(id).size())
                    : 0.0;
    collector.Add(id, std::clamp(estimate, 0.0, 1.0));
  }
  collector.Finish();
  return response;
}

uint64_t MinHashLshSearcher::SpaceUnits() const {
  // Signatures (m·k units) plus the flat banding bucket tables.
  return static_cast<uint64_t>(dataset_.size()) * options_.num_hashes +
         index_->SpaceUnits();
}

}  // namespace gbkmv
