#include "index/brute_force.h"

#include <cmath>

#include "storage/simd/simd.h"

namespace gbkmv {

QueryResponse BruteForceSearcher::SearchQ(const QueryRequest& request,
                                          QueryContext& ctx) const {
  QueryResponse response;
  const Record& query = *request.record;
  if (query.empty()) return response;
  // |Q∩X| >= t*·|Q| (Eq. 23). Use a half-ulp slack so thresholds like 0.5
  // with |Q∩X|/|Q| == exactly t* are included (>=, Definition 3).
  const double theta =
      request.threshold * static_cast<double>(query.size());
  const size_t min_overlap = static_cast<size_t>(std::ceil(theta - 1e-9));
  const double inv_q = 1.0 / static_cast<double>(query.size());

  HitCollector collector(request, ctx, &response);
  // The bounded kernel abandons a merge once min_overlap is unreachable and
  // returns the exact overlap otherwise — exactly what the emit test and
  // score need.
  const auto& kernels = Kernels();
  const uint32_t required = static_cast<uint32_t>(min_overlap);
  for (size_t i = 0; i < dataset_.size(); ++i) {
    const Record& x = dataset_.record(i);
    if (x.size() < min_overlap) continue;  // Size lower bound.
    ++response.stats.candidates_generated;
    response.stats.postings_scanned += x.size();
    const size_t overlap = kernels.intersect_bounded(
        query.data(), query.size(), x.data(), x.size(), required);
    if (overlap >= min_overlap) {
      collector.Add(static_cast<RecordId>(i),
                    static_cast<double>(overlap) * inv_q);
    }
  }
  collector.Finish();
  return response;
}

uint64_t BruteForceSearcher::SpaceUnits() const {
  return dataset_.total_elements();  // The "index" is the raw data.
}

}  // namespace gbkmv
