#include "index/brute_force.h"

#include <cmath>

namespace gbkmv {

std::vector<RecordId> BruteForceSearcher::Search(const Record& query,
                                                 double threshold) const {
  std::vector<RecordId> out;
  if (query.empty()) return out;
  // |Q∩X| >= t*·|Q| (Eq. 23). Use a half-ulp slack so thresholds like 0.5
  // with |Q∩X|/|Q| == exactly t* are included (>=, Definition 3).
  const double theta = threshold * static_cast<double>(query.size());
  const size_t min_overlap =
      static_cast<size_t>(std::ceil(theta - 1e-9));
  for (size_t i = 0; i < dataset_.size(); ++i) {
    const Record& x = dataset_.record(i);
    if (x.size() < min_overlap) continue;  // Size lower bound.
    if (IntersectSize(query, x) >= min_overlap) {
      out.push_back(static_cast<RecordId>(i));
    }
  }
  return out;
}

std::vector<std::vector<RecordId>> BruteForceSearcher::BatchQuery(
    std::span<const Record> queries, double threshold,
    size_t num_threads) const {
  // Search keeps no scratch, so concurrent callers are safe.
  return ParallelBatchQuery(*this, queries, threshold, num_threads);
}

uint64_t BruteForceSearcher::SpaceUnits() const {
  return dataset_.total_elements();  // The "index" is the raw data.
}

}  // namespace gbkmv
