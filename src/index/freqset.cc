#include "index/freqset.h"

#include <cmath>
#include <numeric>

#include "common/thread_pool.h"

namespace gbkmv {

FreqSetSearcher::FreqSetSearcher(const Dataset& dataset, ThreadPool* pool)
    : dataset_(dataset), index_(dataset, pool), counter_(dataset.size(), 0) {}

std::vector<RecordId> FreqSetSearcher::Search(const Record& query,
                                              double threshold) const {
  return SearchWithCounter(query, threshold, counter_);
}

std::vector<RecordId> FreqSetSearcher::SearchWithCounter(
    const Record& query, double threshold,
    std::vector<uint32_t>& counter) const {
  std::vector<RecordId> out;
  if (query.empty()) return out;
  const size_t theta = static_cast<size_t>(std::ceil(
      threshold * static_cast<double>(query.size()) - 1e-9));
  if (theta == 0) {
    out.resize(dataset_.size());
    std::iota(out.begin(), out.end(), 0);
    return out;
  }
  if (theta > query.size()) return out;
  return index_.ScanCount(query, theta, counter);
}

std::vector<std::vector<RecordId>> FreqSetSearcher::BatchQuery(
    std::span<const Record> queries, double threshold,
    size_t num_threads) const {
  return ParallelBatchQueryWithScratch(
      queries, num_threads,
      [this] { return std::vector<uint32_t>(dataset_.size(), 0); },
      [this, threshold](const Record& q, std::vector<uint32_t>& counter) {
        return SearchWithCounter(q, threshold, counter);
      });
}

}  // namespace gbkmv
