#include "index/freqset.h"

#include <cmath>

#include "common/thread_pool.h"

namespace gbkmv {

FreqSetSearcher::FreqSetSearcher(const Dataset& dataset, ThreadPool* pool,
                                 PostingStoreKind store)
    : dataset_(&dataset),
      num_records_(dataset.size()),
      index_(dataset, pool, store) {}

QueryResponse FreqSetSearcher::SearchQ(const QueryRequest& request,
                                       QueryContext& ctx) const {
  QueryResponse response;
  const Record& query = *request.record;
  if (query.empty()) return response;
  const size_t q = query.size();
  const size_t theta = static_cast<size_t>(
      std::ceil(request.threshold * static_cast<double>(q) - 1e-9));
  if (theta > q) return response;
  const double inv_q = 1.0 / static_cast<double>(q);

  HitCollector collector(request, ctx, &response);
  if (theta == 0) {
    // Threshold 0: every record qualifies. A count pass (θ = 1) still runs
    // when the caller wants scores, so hits carry exact containment; the
    // boolean path skips it and emits plain ids.
    const bool need_scores = request.want_scores || request.top_k > 0;
    if (need_scores) {
      index_.CountOverlaps(query, 1, ctx, &response.stats);
    }
    response.stats.candidates_generated = num_records_;
    for (size_t i = 0; i < num_records_; ++i) {
      const double overlap =
          need_scores
              ? static_cast<double>(ctx.CountOf(static_cast<uint32_t>(i)))
              : 0.0;
      collector.Add(static_cast<RecordId>(i), overlap * inv_q);
    }
    collector.Finish();
    return response;
  }

  // One pass: the counting phases leave every touched record's overlap in
  // ctx, and the qualifiers are emitted straight into the collector — no
  // intermediate id vector, and the boolean path never even divides.
  index_.CountOverlaps(query, theta, ctx, &response.stats);
  if (request.want_scores || request.top_k > 0) {
    for (RecordId id : ctx.touched()) {
      const uint64_t overlap = ctx.CountOf(id);
      if (overlap >= theta) {
        collector.Add(id, static_cast<double>(overlap) * inv_q);
      }
    }
  } else {
    for (RecordId id : ctx.touched()) {
      if (ctx.CountOf(id) >= theta) collector.Add(id, 0.0);
    }
  }
  collector.Finish();
  return response;
}

}  // namespace gbkmv
