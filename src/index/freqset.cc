#include "index/freqset.h"

#include <cmath>
#include <numeric>

namespace gbkmv {

FreqSetSearcher::FreqSetSearcher(const Dataset& dataset)
    : dataset_(dataset), index_(dataset) {}

std::vector<RecordId> FreqSetSearcher::Search(const Record& query,
                                              double threshold) const {
  std::vector<RecordId> out;
  if (query.empty()) return out;
  const size_t theta = static_cast<size_t>(std::ceil(
      threshold * static_cast<double>(query.size()) - 1e-9));
  if (theta == 0) {
    out.resize(dataset_.size());
    std::iota(out.begin(), out.end(), 0);
    return out;
  }
  if (theta > query.size()) return out;
  return index_.ScanCount(query, theta);
}

}  // namespace gbkmv
