#include "index/freqset.h"

#include <cmath>
#include <numeric>

#include "common/thread_pool.h"
#include "storage/query_context.h"

namespace gbkmv {

FreqSetSearcher::FreqSetSearcher(const Dataset& dataset, ThreadPool* pool)
    : dataset_(dataset), index_(dataset, pool) {}

std::vector<RecordId> FreqSetSearcher::Search(const Record& query,
                                              double threshold) const {
  std::vector<RecordId> out;
  if (query.empty()) return out;
  const size_t theta = static_cast<size_t>(std::ceil(
      threshold * static_cast<double>(query.size()) - 1e-9));
  if (theta == 0) {
    out.resize(dataset_.size());
    std::iota(out.begin(), out.end(), 0);
    return out;
  }
  if (theta > query.size()) return out;
  return index_.ScanCount(query, theta, ThreadLocalQueryContext());
}

std::vector<std::vector<RecordId>> FreqSetSearcher::BatchQuery(
    std::span<const Record> queries, double threshold,
    size_t num_threads) const {
  // Search scratch is per-thread (QueryContext), so concurrent callers are
  // safe.
  return ParallelBatchQuery(*this, queries, threshold, num_threads);
}

}  // namespace gbkmv
