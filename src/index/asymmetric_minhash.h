// Asymmetric minwise hashing (Shrivastava & Li, WWW 2015) — the
// data-independent baseline that preceded LSH-E (§VI of the paper).
//
// Containment has no LSH family, but padding makes Jaccard a monotone proxy:
// every record X is padded with |X_max| − |X| record-specific dummy elements
// so all records have size M = |X_max|. For an unpadded query Q,
//   J(Q, X_pad) = |Q∩X| / (|Q| + M − |Q∩X|)
// is monotone in |Q∩X| for fixed |Q|, so a MinHash LSH over the padded
// records retrieves high-containment records. A containment threshold t*
// maps to the Jaccard threshold s* = θ / (q + M − θ), θ = t*·q.
//
// Like LSH-E, the candidates are the answer (no verification), which is why
// the method favours recall; unlike LSH-E there is no size partitioning, so
// heavily padded short records dilute the signatures — the weakness [44]
// demonstrated and the reason the paper compares against LSH-E instead.

#ifndef GBKMV_INDEX_ASYMMETRIC_MINHASH_H_
#define GBKMV_INDEX_ASYMMETRIC_MINHASH_H_

#include <cstdint>
#include <memory>

#include "common/status.h"
#include "data/dataset.h"
#include "index/minhash_lsh.h"
#include "index/searcher.h"

namespace gbkmv {

struct AsymmetricMinHashOptions {
  size_t num_hashes = 256;
  uint64_t seed = 0x5eedca5e;
  // Signature-build parallelism (byte-identical output for any value).
  // 0 = DefaultThreads(), 1 = serial.
  size_t num_threads = 0;
};

class AsymmetricMinHashSearcher : public ContainmentSearcher {
 public:
  static Result<std::unique_ptr<AsymmetricMinHashSearcher>> Create(
      const Dataset& dataset, const AsymmetricMinHashOptions& options);

  // Candidates are the answer (no verification). Hit scores invert the
  // padded-Jaccard proxy: Ĵ = collision fraction of the query signature vs
  // the stored padded signature, |Q∩X| ≈ Ĵ·(|Q|+M)/(1+Ĵ), score that over
  // |Q| clamped by min(|Q|, |X|)/|Q|.
  QueryResponse SearchQ(const QueryRequest& request,
                        QueryContext& ctx) const override;
  std::string name() const override { return "A-MH"; }
  uint64_t SpaceUnits() const override;
  // Paper measure: one unit per stored signature value (m·k).
  uint64_t BudgetSpaceUnits() const override {
    return static_cast<uint64_t>(dataset_.size()) * options_.num_hashes;
  }

  size_t padded_size() const { return padded_size_; }

 private:
  AsymmetricMinHashSearcher(const Dataset& dataset,
                            const AsymmetricMinHashOptions& options)
      : dataset_(dataset), options_(options),
        family_(options.num_hashes, options.seed) {}

  const Dataset& dataset_;
  AsymmetricMinHashOptions options_;
  HashFamily family_;
  size_t padded_size_ = 0;  // M = size of the largest record
  // Padded per-record signatures, kept for hit scoring (their m·k units were
  // always part of SpaceUnits; now they are actually resident).
  std::vector<MinHashSignature> signatures_;
  std::unique_ptr<MinHashLshIndex> index_;
};

}  // namespace gbkmv

#endif  // GBKMV_INDEX_ASYMMETRIC_MINHASH_H_
