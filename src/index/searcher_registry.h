// SearcherRegistry: reconstructs the right ContainmentSearcher from a
// snapshot file's meta header.
//
// Every searcher snapshot written through src/io carries a kind string
// ("gbkmv-index", "dynamic-gbkmv-index", "lsh-ensemble"). The registry reads
// it and dispatches to the matching Load implementation, so callers (CLI,
// bench harnesses, services) can reload an index without knowing which
// method produced the file.
//
// Two entry points:
//   * LoadSearcherSnapshot(path) — self-contained load. Dataset-bound
//     snapshots embed their dataset; the returned bundle owns both the
//     dataset and the searcher (searcher references dataset, so the bundle
//     must stay alive as long as the searcher is used).
//   * LoadSearcherSnapshot(path, dataset) — re-binds the snapshot to an
//     existing in-memory dataset (verified by fingerprint); used by the
//     bench snapshot cache, which already holds the dataset.

#ifndef GBKMV_INDEX_SEARCHER_REGISTRY_H_
#define GBKMV_INDEX_SEARCHER_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "index/searcher.h"

namespace gbkmv {

struct LoadedSearcher {
  // Null when the snapshot is self-contained (dynamic-gbkmv-index).
  std::unique_ptr<Dataset> dataset;
  std::unique_ptr<ContainmentSearcher> searcher;
};

// Kind strings of every registered searcher snapshot type.
std::vector<std::string> RegisteredSnapshotKinds();

// Reads only the meta header of `path` (cheap; full CRC validation of the
// file still applies).
Result<std::string> ReadSearcherSnapshotKind(const std::string& path);

Result<LoadedSearcher> LoadSearcherSnapshot(const std::string& path);

Result<std::unique_ptr<ContainmentSearcher>> LoadSearcherSnapshot(
    const std::string& path, const Dataset& dataset);

}  // namespace gbkmv

#endif  // GBKMV_INDEX_SEARCHER_REGISTRY_H_
