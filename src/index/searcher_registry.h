// SearcherRegistry: reconstructs the right ContainmentSearcher from a
// snapshot file's meta header.
//
// Every searcher snapshot written through src/io carries a kind string
// ("gbkmv-index", "dynamic-gbkmv-index", "lsh-ensemble"). The registry reads
// it and dispatches to the matching Load implementation, so callers (CLI,
// bench harnesses, services) can reload an index without knowing which
// method produced the file.
//
// Three entry points:
//   * LoadSearcherSnapshot(path) — self-contained copying load.
//     Dataset-bound snapshots embed their dataset; the returned bundle owns
//     both the dataset and the searcher (searcher references dataset, so
//     the bundle must stay alive as long as the searcher is used).
//   * LoadSearcherSnapshot(path, dataset) — re-binds the snapshot to an
//     existing in-memory dataset (verified by fingerprint); used by the
//     bench snapshot cache, which already holds the dataset.
//   * LoadSearcherSnapshotAuto(path) — zero-copy load when possible: a v3
//     snapshot of an mmap-capable kind (gbkmv-index, freqset-index) is
//     mapped and the searcher serves straight out of the mapping (no
//     embedded dataset is materialized); anything else falls back to the
//     copying loader. GBKMV_FORCE_COPY_LOAD=1 forces the copying path —
//     results are bit-identical either way.

#ifndef GBKMV_INDEX_SEARCHER_REGISTRY_H_
#define GBKMV_INDEX_SEARCHER_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "index/searcher.h"

namespace gbkmv {

namespace io {
class MmapSnapshot;
}  // namespace io

struct LoadedSearcher {
  // Null when the snapshot is self-contained (dynamic-gbkmv-index).
  std::unique_ptr<Dataset> dataset;
  std::unique_ptr<ContainmentSearcher> searcher;
};

// Result of the auto loader. Declaration order is the ownership order: the
// searcher may borrow from the mapping (and reference the dataset), so it
// is declared last and destroyed first.
struct MappedSearcher {
  // Non-null only on the mapped path; the searcher serves borrowed memory
  // out of it, so it must stay alive as long as the searcher does.
  std::shared_ptr<io::MmapSnapshot> mapping;
  // Null on the mapped path (the dataset stays on disk, unread) and for
  // self-contained snapshots.
  std::unique_ptr<Dataset> dataset;
  std::unique_ptr<ContainmentSearcher> searcher;

  bool mapped() const { return mapping != nullptr; }
};

// True when GBKMV_FORCE_COPY_LOAD is set to a non-empty value other than
// "0": the auto loader then behaves exactly like LoadSearcherSnapshot.
bool ForceCopyLoad();

// Kind strings of every registered searcher snapshot type.
std::vector<std::string> RegisteredSnapshotKinds();

// Reads only the meta header of `path` (cheap; full CRC validation of the
// file still applies).
Result<std::string> ReadSearcherSnapshotKind(const std::string& path);

Result<LoadedSearcher> LoadSearcherSnapshot(const std::string& path);

Result<std::unique_ptr<ContainmentSearcher>> LoadSearcherSnapshot(
    const std::string& path, const Dataset& dataset);

Result<MappedSearcher> LoadSearcherSnapshotAuto(const std::string& path);

}  // namespace gbkmv

#endif  // GBKMV_INDEX_SEARCHER_REGISTRY_H_
