#include "index/ppjoin.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/thread_pool.h"

namespace gbkmv {

PPJoinSearcher::PPJoinSearcher(const Dataset& dataset) : dataset_(dataset) {
  // Rank tokens by ascending global frequency (ties by id) so record
  // prefixes consist of the rarest tokens.
  const std::vector<uint64_t>& freq = dataset.frequencies();
  std::vector<ElementId> order(freq.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&freq](ElementId a, ElementId b) {
    return freq[a] < freq[b];
  });
  rank_.resize(freq.size());
  for (size_t i = 0; i < order.size(); ++i) rank_[order[i]] = static_cast<uint32_t>(i);

  postings_.resize(freq.size());
  std::vector<ElementId> reordered;
  for (size_t i = 0; i < dataset.size(); ++i) {
    const Record& r = dataset.record(i);
    reordered.assign(r.begin(), r.end());
    std::sort(reordered.begin(), reordered.end(),
              [this](ElementId a, ElementId b) { return rank_[a] < rank_[b]; });
    for (uint32_t pos = 0; pos < reordered.size(); ++pos) {
      postings_[reordered[pos]].push_back(
          {static_cast<RecordId>(i), pos});
      ++index_entries_;
    }
  }
  candidate_flag_.assign(dataset.size(), 0);
}

std::vector<RecordId> PPJoinSearcher::Search(const Record& query,
                                             double threshold) const {
  return SearchWithFlags(query, threshold, candidate_flag_);
}

std::vector<std::vector<RecordId>> PPJoinSearcher::BatchQuery(
    std::span<const Record> queries, double threshold,
    size_t num_threads) const {
  return ParallelBatchQueryWithScratch(
      queries, num_threads,
      [this] { return std::vector<uint8_t>(dataset_.size(), 0); },
      [this, threshold](const Record& q, std::vector<uint8_t>& flags) {
        return SearchWithFlags(q, threshold, flags);
      });
}

std::vector<RecordId> PPJoinSearcher::SearchWithFlags(
    const Record& query, double threshold,
    std::vector<uint8_t>& candidate_flag) const {
  std::vector<RecordId> out;
  if (query.empty()) return out;
  const size_t q = query.size();
  const size_t theta = static_cast<size_t>(
      std::ceil(threshold * static_cast<double>(q) - 1e-9));
  if (theta == 0) {
    // Every record qualifies (threshold 0).
    out.resize(dataset_.size());
    std::iota(out.begin(), out.end(), 0);
    return out;
  }
  if (theta > q) return out;  // Impossible overlap.

  // Query tokens in global frequency order; prefix = first q − θ + 1.
  // Tokens outside the indexed universe rank after all known tokens (any
  // consistent total order keeps the prefix-filter lemma valid; unknown
  // tokens occur in no record, so their posting lists are empty).
  const auto token_rank = [this](ElementId e) -> uint64_t {
    return e < rank_.size() ? rank_[e]
                            : static_cast<uint64_t>(e) + rank_.size();
  };
  std::vector<ElementId> qtokens(query.begin(), query.end());
  std::sort(qtokens.begin(), qtokens.end(),
            [&token_rank](ElementId a, ElementId b) {
              return token_rank(a) < token_rank(b);
            });
  const size_t prefix_len = q - theta + 1;

  std::vector<RecordId> candidates;
  for (size_t i = 0; i < prefix_len; ++i) {
    const ElementId w = qtokens[i];
    if (w >= postings_.size()) continue;
    for (const Posting& p : postings_[w]) {
      if (candidate_flag[p.id]) continue;
      const size_t x = dataset_.record(p.id).size();
      if (x < theta) continue;                       // size filter
      if (p.position + theta > x) continue;          // record prefix filter
      // Positional filter: best-case overlap from this alignment.
      const size_t bound =
          1 + std::min(q - i - 1, x - p.position - 1);
      if (bound < theta) continue;
      candidate_flag[p.id] = 1;
      candidates.push_back(p.id);
    }
  }

  for (RecordId id : candidates) {
    candidate_flag[id] = 0;  // Reset scratch.
    if (IntersectSize(query, dataset_.record(id)) >= theta) {
      out.push_back(id);
    }
  }
  return out;
}

uint64_t PPJoinSearcher::SpaceUnits() const {
  // Each posting entry stores (id, position): charge two 32-bit units.
  return 2 * index_entries_;
}

}  // namespace gbkmv
