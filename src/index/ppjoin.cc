#include "index/ppjoin.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/thread_pool.h"
#include "storage/query_context.h"
#include "storage/simd/simd.h"

namespace gbkmv {

PPJoinSearcher::PPJoinSearcher(const Dataset& dataset, ThreadPool* pool)
    : dataset_(dataset) {
  // Rank tokens by ascending global frequency (ties by id) so record
  // prefixes consist of the rarest tokens.
  const std::vector<uint64_t>& freq = dataset.frequencies();
  std::vector<ElementId> order(freq.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&freq](ElementId a, ElementId b) {
    return freq[a] < freq[b];
  });
  rank_.resize(freq.size());
  for (size_t i = 0; i < order.size(); ++i) rank_[order[i]] = static_cast<uint32_t>(i);

  // Frequency-order every record once into a flat scratch CSR (row starts =
  // element-count prefix sums), then run the deterministic two-pass posting
  // build over it. The same prefix sums double as the element-order flat
  // record copy the query path scans (record_offsets_/record_elems_).
  const size_t m = dataset.size();
  std::vector<size_t> row(m + 1, 0);
  for (size_t i = 0; i < m; ++i) row[i + 1] = row[i] + dataset.record(i).size();
  record_offsets_.resize(m + 1);
  for (size_t i = 0; i <= m; ++i) {
    record_offsets_[i] = static_cast<uint32_t>(row[i]);
  }
  record_elems_.resize(row[m]);
  std::vector<ElementId> reordered(row[m]);
  const auto reorder_range = [&](size_t begin, size_t end, size_t /*chunk*/) {
    for (size_t i = begin; i < end; ++i) {
      const Record& r = dataset.record(i);
      std::copy(r.begin(), r.end(), record_elems_.begin() + row[i]);
      std::copy(r.begin(), r.end(), reordered.begin() + row[i]);
      std::sort(reordered.begin() + row[i], reordered.begin() + row[i + 1],
                [this](ElementId a, ElementId b) { return rank_[a] < rank_[b]; });
    }
  };
  if (pool == nullptr || pool->num_threads() <= 1 || m <= 1) {
    reorder_range(0, m, 0);
  } else {
    pool->ParallelFor(0, m, (m + pool->num_threads() - 1) / pool->num_threads(),
                      reorder_range);
  }

  postings_ = CsrStore<Posting>::Build(
      freq.size(), m,
      [&](size_t i, const auto& fn) {
        for (size_t pos = row[i]; pos < row[i + 1]; ++pos) {
          fn(reordered[pos],
             Posting{static_cast<RecordId>(i),
                     static_cast<uint32_t>(pos - row[i])});
        }
      },
      pool, row[m]);
}

QueryResponse PPJoinSearcher::SearchQ(const QueryRequest& request,
                                      QueryContext& ctx) const {
  QueryResponse response;
  const Record& query = *request.record;
  if (query.empty()) return response;
  const size_t q = query.size();
  const size_t theta = static_cast<size_t>(
      std::ceil(request.threshold * static_cast<double>(q) - 1e-9));
  const double inv_q = 1.0 / static_cast<double>(q);
  HitCollector collector(request, ctx, &response);
  const auto& kernels = Kernels();
  if (theta == 0) {
    // Every record qualifies (threshold 0); scores need a verification
    // merge per record, which the prefix index cannot shortcut.
    const bool need_scores = request.want_scores || request.top_k > 0;
    response.stats.candidates_generated = dataset_.size();
    for (size_t i = 0; i < dataset_.size(); ++i) {
      const double overlap =
          need_scores
              ? static_cast<double>(kernels.intersect_bounded(
                    query.data(), q, record_elems_.data() + record_offsets_[i],
                    record_offsets_[i + 1] - record_offsets_[i], 0))
              : 0.0;
      collector.Add(static_cast<RecordId>(i), overlap * inv_q);
    }
    collector.Finish();
    return response;
  }
  if (theta > q) return response;  // Impossible overlap.

  // Query tokens in global frequency order; prefix = first q − θ + 1.
  // Tokens outside the indexed universe rank after all known tokens (any
  // consistent total order keeps the prefix-filter lemma valid; unknown
  // tokens occur in no record, so their posting lists are empty).
  const auto token_rank = [this](ElementId e) -> uint64_t {
    return e < rank_.size() ? rank_[e]
                            : static_cast<uint64_t>(e) + rank_.size();
  };
  std::vector<ElementId> qtokens(query.begin(), query.end());
  std::sort(qtokens.begin(), qtokens.end(),
            [&token_rank](ElementId a, ElementId b) {
              return token_rank(a) < token_rank(b);
            });
  const size_t prefix_len = q - theta + 1;

  ctx.Begin(dataset_.size());
  for (size_t i = 0; i < prefix_len; ++i) {
    const std::span<const Posting> row = postings_.Row(qtokens[i]);
    response.stats.postings_scanned += row.size();
    for (const Posting& p : row) {
      if (ctx.IsMarked(p.id)) continue;
      const size_t x = record_offsets_[p.id + 1] - record_offsets_[p.id];
      if (x < theta) continue;                       // size filter
      if (p.position + theta > x) continue;          // record prefix filter
      // Positional filter: best-case overlap from this alignment.
      const size_t bound =
          1 + std::min(q - i - 1, x - p.position - 1);
      if (bound < theta) continue;
      ctx.Mark(p.id);
    }
  }

  // Verification: exact bounded intersection per candidate. The kernel
  // abandons the merge the moment θ becomes unreachable (returning 0, below
  // any θ >= 1), so failing candidates — the common case at realistic
  // thresholds — cost a fraction of a full merge; the exact overlap comes
  // back whenever it is >= θ, which is all the score needs.
  response.stats.candidates_generated = ctx.touched().size();
  const uint32_t required = static_cast<uint32_t>(theta);
  for (RecordId id : ctx.touched()) {
    const size_t overlap = kernels.intersect_bounded(
        query.data(), q, record_elems_.data() + record_offsets_[id],
        record_offsets_[id + 1] - record_offsets_[id], required);
    if (overlap >= theta) {
      collector.Add(id, static_cast<double>(overlap) * inv_q);
    }
  }
  collector.Finish();
  return response;
}

uint64_t PPJoinSearcher::SpaceUnits() const {
  // Postings (two 32-bit words per (id, position) entry + offsets), the
  // global token-rank array, and the flat element-order record copy the
  // verification path scans.
  return postings_.SpaceUnits() + rank_.size() + record_offsets_.size() +
         record_elems_.size();
}

}  // namespace gbkmv
