// GB-KMV containment-similarity search (Algorithm 2 + the §IV-B
// implementation notes).
//
// Build: one GbKmvSketch per record (buffer bitmap + G-KMV hash set), an
// inverted index over the G-KMV hash values, and a size-sorted record order
// for the partition lower-bound pruning.
//
// Query (threshold t*, θ = t*·|Q|):
//   * records with |X| < θ are pruned outright (a record smaller than the
//     required overlap can never qualify — the paper's per-partition size
//     lower bound, applied at its finest granularity);
//   * K∩ per record comes from a ScanCount over the query's sketch hashes
//     (the paper's PPjoin*-style "K∩ ≥ o" candidate generation);
//   * |H_Q ∩ H_X| comes from a bitmap AND over the eligible records;
//   * the G-KMV estimator needs only (K∩, |L_Q|, |L_X|, max hash), all O(1)
//     per candidate: k = |L_Q|+|L_X|−K∩ and U(k) = max(max L_Q, max L_X),
//     so every candidate is scored exactly as Eq. 27 with no re-merge.
// Records whose estimate reaches θ are returned.

#ifndef GBKMV_INDEX_GBKMV_INDEX_H_
#define GBKMV_INDEX_GBKMV_INDEX_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "index/searcher.h"
#include "sketch/cost_model.h"
#include "sketch/gbkmv.h"
#include "storage/flat_hash_postings.h"

namespace gbkmv {

class ThreadPool;

namespace io {
class Reader;
class SnapshotReader;
}  // namespace io

struct GbKmvIndexOptions {
  // Space budget as a fraction of the dataset's total elements N
  // (the paper's "SpaceUsed"; default 10%). Ignored if budget_units > 0.
  double space_ratio = 0.10;
  uint64_t budget_units = 0;

  // Buffer width r in bits. kAutoBuffer asks the cost model (§IV-C6);
  // 0 disables the buffer (G-KMV behaviour).
  static constexpr size_t kAutoBuffer = ~size_t{0};
  size_t buffer_bits = kAutoBuffer;

  CostModelOptions cost_model;
  uint64_t seed = kDefaultSketchSeed;

  // Build parallelism: sketches and the hash-posting index are built in
  // per-shard pieces merged in shard order, so the result is byte-identical
  // to a sequential build for any value. 0 = DefaultThreads(), 1 = serial.
  size_t num_threads = 0;
};

class GbKmvIndexSearcher : public ContainmentSearcher {
 public:
  // Builds sketches for every record. `dataset` must outlive the searcher.
  static Result<std::unique_ptr<GbKmvIndexSearcher>> Create(
      const Dataset& dataset, const GbKmvIndexOptions& options);

  // Resolves the options against `dataset` (budget from space_ratio, buffer
  // width from the cost model) and builds the sketcher alone — the global
  // threshold τ and buffer universe E_H without any per-record sketches.
  // This is what Create derives internally; the sharded service
  // (src/serve) calls it once on the FULL dataset and then hands the result
  // to CreateWithSketcher per shard, so every shard sketches records with
  // identical global parameters.
  static Result<GbKmvSketcher> MakeSketcher(const Dataset& dataset,
                                            const GbKmvIndexOptions& options);

  // Builds a searcher over `dataset` (a shard) with an externally supplied
  // sketcher instead of deriving one. Because GbKmvSketcher::Sketch is a
  // pure per-record function of (τ, E_H, seed), a record's sketch — and
  // therefore every pairwise containment estimate involving it — is
  // identical whether the record lives in a shard or in the single full
  // index the sketcher was derived from (the bit-identical sharding
  // invariant, docs/sharding.md). By value: the sharded service copies its
  // shared global sketcher in, Create moves its freshly derived one.
  static Result<std::unique_ptr<GbKmvIndexSearcher>> CreateWithSketcher(
      const Dataset& dataset, GbKmvSketcher sketcher, size_t num_threads = 0);

  // One immutable source of an index-level merge: a searcher plus an
  // optional tombstone mask (deleted != null and (*deleted)[i] != 0 drops
  // local row i).
  struct MergeSource {
    const GbKmvIndexSearcher* searcher = nullptr;
    const std::vector<uint8_t>* deleted = nullptr;
  };

  // Index-level shard merge (docs/sharding.md "Shard lifecycle"):
  // concatenates the sources' flat sketch stores in order, skipping
  // tombstoned rows, and rebuilds only the derived query structures (size
  // order + hash postings, a deterministic two-pass count/scatter over the
  // concatenated rows) — no record is ever re-sketched. `dataset` must
  // hold exactly the surviving records in merge order (source order,
  // ascending local id within a source) and must outlive the searcher.
  // Because a record's flat row is a pure function of (record, sketcher),
  // the merged searcher answers bit-identically — hits, scores, stats —
  // to CreateWithSketcher over `dataset` with the shared sketcher. All
  // sources must share the first source's sketcher parameters (buffer
  // width, global threshold); InvalidArgument otherwise, and
  // InvalidArgument when every row is tombstoned (an index cannot be
  // empty — the caller drops the shard instead).
  static Result<std::unique_ptr<GbKmvIndexSearcher>> Merge(
      std::span<const MergeSource> sources, const Dataset& dataset);

  // Safe for concurrent callers with distinct QueryContext arenas. Hit
  // scores are the Eq. 27 estimate (buffer overlap + G-KMV term, clamped by
  // min(|Q|, |X|)) divided by |Q| — the very value the threshold test uses.
  QueryResponse SearchQ(const QueryRequest& request,
                        QueryContext& ctx) const override;
  std::string name() const override {
    return chosen_buffer_bits_ > 0 ? "GB-KMV" : "G-KMV";
  }
  // Full resident storage: sketches + the flat hash-posting index
  // (docs/snapshot_format.md has the per-method formula).
  uint64_t SpaceUnits() const override {
    return space_units_ + hash_postings_.SpaceUnits();
  }
  // Sketch payload alone, the paper's budget measure (<= the space budget).
  uint64_t BudgetSpaceUnits() const override { return space_units_; }

  // Containment estimate for a single record (Eq. 27 over stored sketches).
  double EstimateContainment(const Record& query, RecordId id) const;

  size_t chosen_buffer_bits() const { return chosen_buffer_bits_; }
  uint64_t global_threshold() const { return sketcher_->global_threshold(); }

  // Snapshot persistence (src/io; defined in io/persist_index.cc). The
  // snapshot embeds the dataset and the flat sketch payload, so a reloaded
  // searcher returns byte-identical Search() results without re-sketching.
  // Format version 3 lays the payload out as 64-byte-aligned flat arrays;
  // LoadMapped serves them straight out of a validated v3 view (no dataset,
  // no copies) with the caller keeping the backing mapping alive — a mapped
  // searcher cannot Save (FailedPrecondition; copy the snapshot file
  // instead).
  static constexpr char kSnapshotKind[] = "gbkmv-index";
  Status Save(const std::string& path) const;
  Status SaveSnapshot(const std::string& path) const override {
    return Save(path);
  }
  // `dataset` must be the dataset the snapshot was built from (verified by
  // fingerprint) and must outlive the searcher.
  static Result<std::unique_ptr<GbKmvIndexSearcher>> Load(
      const std::string& path, const Dataset& dataset);
  static Result<std::unique_ptr<GbKmvIndexSearcher>> LoadFrom(
      const io::SnapshotReader& snapshot, const Dataset& dataset);
  static Result<std::unique_ptr<GbKmvIndexSearcher>> LoadMapped(
      const io::SnapshotReader& snapshot);

 private:
  explicit GbKmvIndexSearcher(const Dataset* dataset) : dataset_(dataset) {}

  // Shared v3 load path (io/persist_index.cc): reads the aligned flat
  // sketch store; `dataset` is null for mapped (dataset-free) loads and
  // `borrow` serves the arrays from the reader's buffer in place.
  static Result<std::unique_ptr<GbKmvIndexSearcher>> LoadAligned(
      io::Reader* in, const Dataset* dataset, bool borrow);

  size_t num_records() const { return record_sizes_.size(); }

  // Flat sketch store slices: record `id`'s buffer bitmap words and its
  // ascending G-KMV hash values.
  std::span<const uint64_t> BufferWordsOf(RecordId id) const {
    return buffer_words_.subspan(size_t{id} * words_per_record_,
                                 words_per_record_);
  }
  std::span<const uint64_t> HashesOf(RecordId id) const {
    return hashes_.subspan(hash_offsets_[id],
                           hash_offsets_[id + 1] - hash_offsets_[id]);
  }

  // Flattens freshly built / legacy-loaded per-record sketches into the
  // flat arrays (Corruption when a stored sketch disagrees with the
  // sketcher's global threshold).
  Status AdoptSketches(const std::vector<GbKmvSketch>& sketches);

  // Builds the derived query structures (size order and, unless
  // `rebuild_postings` is false because a snapshot already supplied them,
  // the flat hash postings) from the flat sketch store + record_sizes_;
  // shared by Create and the loaders. Deterministic for any thread count.
  void BuildQueryStructures(bool rebuild_postings = true);

  const Dataset* dataset_;  // null for mapped (dataset-free) loads
  std::unique_ptr<GbKmvSketcher> sketcher_;
  size_t chosen_buffer_bits_ = 0;
  uint64_t space_units_ = 0;  // sketch payload (bitmaps + stored hashes)

  // Flat sketch store (docs/architecture.md "Borrowed memory"): all
  // per-record sketch state in four flat arrays read through spans that
  // either alias the owned vectors or point into a mapped v3 snapshot.
  // Every bitmap is exactly words_per_record_ words wide; every stored hash
  // is <= sketch_threshold_ (== sketcher_->global_threshold()).
  size_t words_per_record_ = 0;
  uint64_t sketch_threshold_ = 0;
  std::vector<uint32_t> owned_record_sizes_;
  std::vector<uint64_t> owned_buffer_words_;
  std::vector<uint64_t> owned_hash_offsets_;
  std::vector<uint64_t> owned_hashes_;
  std::span<const uint32_t> record_sizes_;   // |X| per record id
  std::span<const uint64_t> buffer_words_;   // m * words_per_record_
  std::span<const uint64_t> hash_offsets_;   // m + 1 row starts
  std::span<const uint64_t> hashes_;         // concatenated G-KMV values

  // Record ids sorted by ascending size + parallel sizes for binary search.
  std::vector<RecordId> by_size_;
  std::vector<uint32_t> sorted_sizes_;
  // Same order restricted to records with a non-empty buffer bitmap (the
  // only ones the buffer-only pass can return).
  std::vector<RecordId> buffered_by_size_;
  std::vector<uint32_t> buffered_sorted_sizes_;
  // G-KMV hash value -> records containing it (flat CSR + open addressing).
  FlatHashPostings hash_postings_;
};

// Plain-KMV baseline searcher (§IV-A(1)): every record gets a size-⌊b/m⌋ KMV
// sketch (the optimal allocation of Theorem 1) and queries are scored with
// the classic pairwise estimator (Eqs. 8–10) against all size-eligible
// records.
class KmvSearcher : public ContainmentSearcher {
 public:
  // num_threads: sketch-build parallelism (0 = DefaultThreads(), 1 = serial;
  // byte-identical output either way).
  static Result<std::unique_ptr<KmvSearcher>> Create(
      const Dataset& dataset, double space_ratio,
      uint64_t seed = kDefaultSketchSeed, size_t num_threads = 0);

  // Hit scores are the clamped pairwise estimate (Eqs. 8–10) over |Q|.
  QueryResponse SearchQ(const QueryRequest& request,
                        QueryContext& ctx) const override;
  std::string name() const override { return "KMV"; }
  uint64_t SpaceUnits() const override { return space_units_; }

  size_t sketch_k() const { return k_; }

 private:
  explicit KmvSearcher(const Dataset& dataset) : dataset_(dataset) {}

  const Dataset& dataset_;
  size_t k_ = 0;
  uint64_t seed_ = 0;
  uint64_t space_units_ = 0;
  std::vector<KmvSketch> sketches_;
  std::vector<uint32_t> record_sizes_;
};

}  // namespace gbkmv

#endif  // GBKMV_INDEX_GBKMV_INDEX_H_
