// Dynamic GB-KMV index — the paper's "Processing Dynamic Data" (§IV-B).
//
// The static index fixes the global threshold τ from the dataset. In the
// dynamic setting the space budget b stays fixed while records keep
// arriving, so τ must shrink over time:
//   * a new record is sketched with the current τ and appended;
//   * when the total sketch size exceeds the budget, a new (smaller) τ is
//     chosen as the largest hash value that fits the budget, and every
//     stored sketch is truncated to it (a G-KMV sketch under τ' ⊂ τ is just
//     the prefix of values ≤ τ', so maintenance never re-hashes records).
// Truncation is amortised: τ is lowered so the index shrinks to
// `shrink_fill` of the budget, giving headroom for further inserts.
//
// The buffer universe E_H is fixed from the initial dataset's frequency
// statistics (the paper computes it once from distribution statistics);
// Rebuild() recomputes it from the current contents when the distribution
// has drifted.

#ifndef GBKMV_INDEX_DYNAMIC_INDEX_H_
#define GBKMV_INDEX_DYNAMIC_INDEX_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "index/searcher.h"
#include "sketch/gbkmv.h"
#include "storage/flat_hash_postings.h"

namespace gbkmv {

namespace io {
class SnapshotReader;
}  // namespace io

struct DynamicGbKmvOptions {
  // Fixed total budget in element units. Required (> 0).
  uint64_t budget_units = 0;
  // Buffer width in bits (chosen by the caller or the cost model).
  size_t buffer_bits = 0;
  // After a threshold shrink the index occupies at most this fraction of
  // the budget (amortisation headroom). In (0, 1].
  double shrink_fill = 0.9;
  uint64_t seed = kDefaultSketchSeed;
};

class DynamicGbKmvIndex : public ContainmentSearcher {
 public:
  // Builds from an initial dataset (may be empty only if `initial` has at
  // least one record to define the buffer universe; otherwise buffer_bits
  // must be 0).
  static Result<std::unique_ptr<DynamicGbKmvIndex>> Create(
      const Dataset& initial, const DynamicGbKmvOptions& options);

  // Appends a record (normalised: sorted unique) and returns its id.
  // May trigger a threshold shrink; never exceeds the budget.
  RecordId Insert(Record record);

  // Number of records currently indexed.
  size_t size() const { return records_.size(); }

  // Current global threshold (monotonically non-increasing over inserts).
  uint64_t global_threshold() const { return threshold_; }

  // Units currently used (bitmaps + stored hashes).
  uint64_t used_units() const { return used_units_; }

  // Recomputes the buffer universe and threshold from the current contents
  // (full rebuild; use after heavy distribution drift).
  Status Rebuild();

  // Folds the pending delta log into the flat posting store. Insert compacts
  // geometrically on its own; call this once after an insert burst when a
  // query-heavy phase follows, so queries stop paying the delta scan.
  // Create() and Rebuild() leave the index compacted.
  void Compact();

  // ContainmentSearcher interface. SearchQ is safe for concurrent callers
  // with distinct QueryContext arenas; Insert must not run concurrently
  // with queries. Hit scores are the Eq. 27 estimate over |Q|, exactly as
  // in the static index.
  QueryResponse SearchQ(const QueryRequest& request,
                        QueryContext& ctx) const override;
  std::string name() const override { return "DynamicGB-KMV"; }
  // Reports the paper's budget units (bitmaps + stored hashes), not the
  // resident posting overlay — the overlay's exact size depends on the
  // insert/compaction history, which would make the measure unstable across
  // save/load (docs/snapshot_format.md).
  uint64_t SpaceUnits() const override { return used_units_; }

  // Containment estimate against one stored record (Eq. 27).
  double EstimateContainment(const Record& query, RecordId id) const;

  const Record& record(RecordId id) const { return records_[id]; }

  // Snapshot persistence (src/io; defined in io/persist_index.cc). The
  // snapshot is fully self-contained: it carries the stored records plus the
  // complete mutable state (current τ, budget options, buffer universe and
  // used units), so a reloaded index resumes Insert() with identical
  // τ-shrink behaviour.
  static constexpr char kSnapshotKind[] = "dynamic-gbkmv-index";
  Status Save(const std::string& path) const;
  Status SaveSnapshot(const std::string& path) const override {
    return Save(path);
  }
  static Result<std::unique_ptr<DynamicGbKmvIndex>> Load(
      const std::string& path);
  static Result<std::unique_ptr<DynamicGbKmvIndex>> LoadFrom(
      const io::SnapshotReader& snapshot);

 private:
  DynamicGbKmvIndex() = default;

  // (Re)derives element_to_bit_ from buffer_elements_.
  void RebuildBufferMap(size_t universe_size);

  // Sketches a record with the current τ / buffer universe.
  GbKmvSketch MakeSketch(const Record& record) const;

  // Lowers τ so used_units_ <= shrink_fill * budget; truncates sketches and
  // rebuilds the hash postings.
  void Shrink();

  // Rebuilds the flat posting store from all sketches and clears the delta
  // log. Insert appends to the delta and compacts geometrically, so the
  // amortised maintenance cost per inserted hash is O(1).
  void CompactPostings();

  DynamicGbKmvOptions options_;
  uint64_t threshold_ = ~0ULL;
  uint64_t used_units_ = 0;

  std::vector<ElementId> buffer_elements_;
  std::vector<int32_t> element_to_bit_;  // grown on demand

  std::vector<Record> records_;
  std::vector<GbKmvSketch> sketches_;
  // Sketch-hash postings: a compacted flat store plus an append-only delta
  // log of (hash, id) pairs for records inserted since the last compaction.
  // Queries probe the store and scan the (geometrically bounded) delta.
  FlatHashPostings hash_postings_;
  std::vector<std::pair<uint64_t, RecordId>> delta_;
};

}  // namespace gbkmv

#endif  // GBKMV_INDEX_DYNAMIC_INDEX_H_
