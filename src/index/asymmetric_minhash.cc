#include "index/asymmetric_minhash.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/thread_pool.h"
#include "sketch/parallel_build.h"

namespace gbkmv {

namespace {

// Dummy element ids live above the real universe; each record gets its own
// disjoint range so dummies never collide across records (padding must not
// create artificial overlap).
ElementId DummyBase(size_t universe_size, RecordId record, size_t padded_size) {
  return static_cast<ElementId>(universe_size +
                                static_cast<size_t>(record) * padded_size);
}

}  // namespace

Result<std::unique_ptr<AsymmetricMinHashSearcher>>
AsymmetricMinHashSearcher::Create(const Dataset& dataset,
                                  const AsymmetricMinHashOptions& options) {
  if (options.num_hashes == 0) {
    return Status::InvalidArgument("num_hashes must be positive");
  }
  if (dataset.empty()) {
    return Status::InvalidArgument("dataset is empty");
  }
  std::unique_ptr<AsymmetricMinHashSearcher> s(
      new AsymmetricMinHashSearcher(dataset, options));
  for (const Record& r : dataset.records()) {
    s->padded_size_ = std::max(s->padded_size_, r.size());
  }

  const std::unique_ptr<ThreadPool> pool =
      MakeBuildPool(options.num_threads, dataset.size());
  const std::vector<MinHashSignature> signatures =
      ParallelMapIndex<MinHashSignature>(pool.get(), dataset.size(),
                                         [&](size_t i) {
        Record padded = dataset.record(i);
        const ElementId base = DummyBase(dataset.universe_size(),
                                         static_cast<RecordId>(i),
                                         s->padded_size_);
        for (size_t pad = padded.size(); pad < s->padded_size_; ++pad) {
          padded.push_back(base + static_cast<ElementId>(pad));
        }
        return MinHashSignature::Build(padded, s->family_);
      });
  std::vector<RecordId> ids(dataset.size());
  std::iota(ids.begin(), ids.end(), 0);
  s->index_ = std::make_unique<MinHashLshIndex>(
      signatures, ids, options.num_hashes,
      DefaultRowChoices(options.num_hashes));
  return s;
}

std::vector<std::vector<RecordId>> AsymmetricMinHashSearcher::BatchQuery(
    std::span<const Record> queries, double threshold,
    size_t num_threads) const {
  // Search keeps no scratch, so concurrent callers are safe.
  return ParallelBatchQuery(*this, queries, threshold, num_threads);
}

std::vector<RecordId> AsymmetricMinHashSearcher::Search(
    const Record& query, double threshold) const {
  std::vector<RecordId> out;
  if (query.empty()) return out;
  const double q = static_cast<double>(query.size());
  const double theta = threshold * q;
  // J(Q, X_pad) at the θ boundary; clamp into (0, 1].
  const double denom = q + static_cast<double>(padded_size_) - theta;
  if (denom <= 0.0) return out;
  const double s_star = std::clamp(theta / denom, 1e-6, 1.0);

  const MinHashSignature query_sig = MinHashSignature::Build(query, family_);
  const BandParams params = OptimalBandParams(options_.num_hashes, s_star,
                                              index_->row_choices());
  out = index_->Query(query_sig, params);
  std::sort(out.begin(), out.end());
  return out;
}

uint64_t AsymmetricMinHashSearcher::SpaceUnits() const {
  // Signatures (m·k units) plus the flat banding bucket tables.
  return static_cast<uint64_t>(dataset_.size()) * options_.num_hashes +
         index_->SpaceUnits();
}

}  // namespace gbkmv
