#include "index/asymmetric_minhash.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/thread_pool.h"
#include "sketch/parallel_build.h"

namespace gbkmv {

namespace {

// Dummy element ids live above the real universe; each record gets its own
// disjoint range so dummies never collide across records (padding must not
// create artificial overlap).
ElementId DummyBase(size_t universe_size, RecordId record, size_t padded_size) {
  return static_cast<ElementId>(universe_size +
                                static_cast<size_t>(record) * padded_size);
}

}  // namespace

Result<std::unique_ptr<AsymmetricMinHashSearcher>>
AsymmetricMinHashSearcher::Create(const Dataset& dataset,
                                  const AsymmetricMinHashOptions& options) {
  if (options.num_hashes == 0) {
    return Status::InvalidArgument("num_hashes must be positive");
  }
  if (dataset.empty()) {
    return Status::InvalidArgument("dataset is empty");
  }
  std::unique_ptr<AsymmetricMinHashSearcher> s(
      new AsymmetricMinHashSearcher(dataset, options));
  for (const Record& r : dataset.records()) {
    s->padded_size_ = std::max(s->padded_size_, r.size());
  }

  const std::unique_ptr<ThreadPool> pool =
      MakeBuildPool(options.num_threads, dataset.size());
  s->signatures_ =
      ParallelMapIndex<MinHashSignature>(pool.get(), dataset.size(),
                                         [&](size_t i) {
        Record padded = dataset.record(i);
        const ElementId base = DummyBase(dataset.universe_size(),
                                         static_cast<RecordId>(i),
                                         s->padded_size_);
        for (size_t pad = padded.size(); pad < s->padded_size_; ++pad) {
          padded.push_back(base + static_cast<ElementId>(pad));
        }
        return MinHashSignature::Build(padded, s->family_);
      });
  std::vector<RecordId> ids(dataset.size());
  std::iota(ids.begin(), ids.end(), 0);
  s->index_ = std::make_unique<MinHashLshIndex>(
      s->signatures_, ids, options.num_hashes,
      DefaultRowChoices(options.num_hashes));
  return s;
}

QueryResponse AsymmetricMinHashSearcher::SearchQ(const QueryRequest& request,
                                                 QueryContext& ctx) const {
  QueryResponse response;
  const Record& query = *request.record;
  if (query.empty()) return response;
  const double q = static_cast<double>(query.size());
  const double theta = request.threshold * q;
  // J(Q, X_pad) at the θ boundary; clamp into (0, 1].
  const double denom = q + static_cast<double>(padded_size_) - theta;
  if (denom <= 0.0) return response;
  const double s_star = std::clamp(theta / denom, 1e-6, 1.0);

  const MinHashSignature query_sig = MinHashSignature::Build(query, family_);
  const BandParams params = OptimalBandParams(options_.num_hashes, s_star,
                                              index_->row_choices());
  const std::vector<RecordId> candidates =
      index_->Query(query_sig, params, &response.stats.postings_scanned);
  response.stats.candidates_generated = candidates.size();
  HitCollector collector(request, ctx, &response);
  const double padded = static_cast<double>(padded_size_);
  // Scoring reads the candidate's full stored signature; the boolean path
  // (no scores, no top-k) skips it, like the legacy candidate-only search.
  const bool need_scores = request.want_scores || request.top_k > 0;
  for (RecordId id : candidates) {
    double score = 0.0;
    if (need_scores) {
      // Invert the padding proxy: Ĵ = Î/(q + M − Î) ⇒ Î = Ĵ·(q + M)/(1 + Ĵ).
      const double j_hat = EstimateJaccardMinHash(query_sig, signatures_[id]);
      const double i_hat = j_hat * (q + padded) / (1.0 + j_hat);
      const double cap = static_cast<double>(
          std::min<size_t>(query.size(), dataset_.record(id).size()));
      score = std::min(i_hat, cap) / q;
    }
    collector.Add(id, score);
  }
  collector.Finish();
  return response;
}

uint64_t AsymmetricMinHashSearcher::SpaceUnits() const {
  // Signatures (m·k units) plus the flat banding bucket tables.
  return static_cast<uint64_t>(dataset_.size()) * options_.num_hashes +
         index_->SpaceUnits();
}

}  // namespace gbkmv
