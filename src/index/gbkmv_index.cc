#include "index/gbkmv_index.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/hash.h"

namespace gbkmv {

namespace {

// O(1) G-KMV pair estimate from summary quantities (see header).
double GkmvEstimateFromCounts(size_t k_intersect, size_t q_size, size_t x_size,
                              uint64_t q_max, uint64_t x_max) {
  if (q_size == 0 || x_size == 0) return 0.0;
  const size_t k = q_size + x_size - k_intersect;
  if (k < 2) return 0.0;
  const double u_k = HashToUnit(std::max(q_max, x_max));
  if (u_k <= 0.0) return 0.0;
  const double kd = static_cast<double>(k);
  return static_cast<double>(k_intersect) / kd * (kd - 1.0) / u_k;
}

}  // namespace

Result<std::unique_ptr<GbKmvIndexSearcher>> GbKmvIndexSearcher::Create(
    const Dataset& dataset, const GbKmvIndexOptions& options) {
  if (dataset.empty()) {
    return Status::InvalidArgument("dataset is empty");
  }
  uint64_t budget = options.budget_units;
  if (budget == 0) {
    if (options.space_ratio <= 0.0) {
      return Status::InvalidArgument("space_ratio must be positive");
    }
    budget = static_cast<uint64_t>(
        options.space_ratio * static_cast<double>(dataset.total_elements()));
  }
  if (budget == 0) {
    return Status::InvalidArgument("budget resolves to zero units");
  }

  std::unique_ptr<GbKmvIndexSearcher> s(new GbKmvIndexSearcher(dataset));

  size_t buffer_bits = options.buffer_bits;
  if (buffer_bits == GbKmvIndexOptions::kAutoBuffer) {
    buffer_bits = ChooseBufferSize(dataset, budget, options.cost_model);
  }
  s->chosen_buffer_bits_ = buffer_bits;

  GbKmvOptions sk_options;
  sk_options.budget_units = budget;
  sk_options.buffer_bits = buffer_bits;
  sk_options.seed = options.seed;
  Result<GbKmvSketcher> sketcher = GbKmvSketcher::Create(dataset, sk_options);
  if (!sketcher.ok()) return sketcher.status();
  s->sketcher_ = std::make_unique<GbKmvSketcher>(std::move(sketcher.value()));

  s->sketches_.reserve(dataset.size());
  s->record_sizes_.reserve(dataset.size());
  for (size_t i = 0; i < dataset.size(); ++i) {
    GbKmvSketch sketch = s->sketcher_->Sketch(dataset.record(i));
    s->space_units_ += sketch.SpaceUnits(buffer_bits);
    s->sketches_.push_back(std::move(sketch));
    s->record_sizes_.push_back(
        static_cast<uint32_t>(dataset.record(i).size()));
  }
  s->BuildQueryStructures();
  return s;
}

void GbKmvIndexSearcher::BuildQueryStructures() {
  const size_t m = sketches_.size();
  hash_postings_.clear();
  for (size_t i = 0; i < m; ++i) {
    for (uint64_t h : sketches_[i].gkmv.values()) {
      hash_postings_[h].push_back(static_cast<RecordId>(i));
    }
  }
  by_size_.resize(m);
  std::iota(by_size_.begin(), by_size_.end(), 0);
  std::sort(by_size_.begin(), by_size_.end(), [this](RecordId a, RecordId b) {
    return record_sizes_[a] != record_sizes_[b]
               ? record_sizes_[a] < record_sizes_[b]
               : a < b;
  });
  sorted_sizes_.clear();
  sorted_sizes_.reserve(m);
  for (RecordId id : by_size_) sorted_sizes_.push_back(record_sizes_[id]);
  scan_counter_.assign(m, 0);
}

std::vector<RecordId> GbKmvIndexSearcher::Search(const Record& query,
                                                 double threshold) const {
  std::vector<RecordId> out;
  if (query.empty()) return out;
  const size_t q = query.size();
  const double theta = threshold * static_cast<double>(q);
  // Partition lower bound: |X| >= ⌈θ⌉ is necessary for |Q∩X| >= θ.
  const uint32_t min_size =
      static_cast<uint32_t>(std::ceil(theta - 1e-9));

  const GbKmvSketch query_sketch = sketcher_->Sketch(query);
  const std::vector<uint64_t>& q_hashes = query_sketch.gkmv.values();
  const size_t q_sketch_size = q_hashes.size();
  const uint64_t q_max = q_hashes.empty() ? 0 : q_hashes.back();

  // ScanCount over the sketch-hash inverted index -> exact K∩ per record.
  std::vector<RecordId> touched;
  for (uint64_t h : q_hashes) {
    const auto it = hash_postings_.find(h);
    if (it == hash_postings_.end()) continue;
    for (RecordId id : it->second) {
      if (scan_counter_[id] == 0) touched.push_back(id);
      ++scan_counter_[id];
    }
  }

  const bool query_buffer_empty = query_sketch.buffer.Empty();
  auto score = [&](RecordId id, size_t k_intersect) -> double {
    const GbKmvSketch& x = sketches_[id];
    const size_t o1 = query_buffer_empty
                          ? 0
                          : Bitmap::IntersectCount(query_sketch.buffer,
                                                   x.buffer);
    const uint64_t x_max = x.gkmv.empty() ? 0 : x.gkmv.values().back();
    const double d_hat = GkmvEstimateFromCounts(
        k_intersect, q_sketch_size, x.gkmv.size(), q_max, x_max);
    // The true intersection cannot exceed either set size; both are known
    // exactly, so clamp the noisy sketch estimate (cuts false positives at
    // high thresholds without affecting recall).
    const double cap = static_cast<double>(
        std::min<size_t>(q, record_sizes_[id]));
    return std::min(static_cast<double>(o1) + d_hat, cap);
  };

  // Records with sketch-hash overlap.
  for (RecordId id : touched) {
    const size_t k_intersect = scan_counter_[id];
    scan_counter_[id] = 0;
    if (record_sizes_[id] < min_size) continue;
    if (score(id, k_intersect) >= theta - 1e-9) out.push_back(id);
  }

  // Records that can qualify on the buffer alone (K∩ = 0): scan the
  // size-eligible suffix with the bitmap fast path.
  if (!query_buffer_empty) {
    const auto begin_it = std::lower_bound(sorted_sizes_.begin(),
                                           sorted_sizes_.end(), min_size);
    for (size_t pos = static_cast<size_t>(begin_it - sorted_sizes_.begin());
         pos < by_size_.size(); ++pos) {
      const RecordId id = by_size_[pos];
      const GbKmvSketch& x = sketches_[id];
      if (x.buffer.Empty()) continue;
      // Skip records already handled through the hash postings: their
      // counter was consumed above, so re-scoring them here would duplicate.
      // Cheap test: recompute K∩ = 0 candidates only.
      // Records with K∩ >= 1 were already fully scored above; with K∩ = 0
      // the sketched part contributes nothing, so only o1 >= θ can qualify
      // here (duplicates are removed by the final sort+unique).
      const size_t o1 =
          Bitmap::IntersectCount(query_sketch.buffer, x.buffer);
      if (static_cast<double>(o1) >= theta - 1e-9) out.push_back(id);
    }
  }

  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

double GbKmvIndexSearcher::EstimateContainment(const Record& query,
                                               RecordId id) const {
  if (query.empty()) return 0.0;
  const GbKmvSketch query_sketch = sketcher_->Sketch(query);
  const double raw = GbKmvSketcher::EstimatePair(query_sketch, sketches_[id])
                         .intersection_size;
  const double cap =
      static_cast<double>(std::min<size_t>(query.size(), record_sizes_[id]));
  return std::min(raw, cap) / static_cast<double>(query.size());
}

Result<std::unique_ptr<KmvSearcher>> KmvSearcher::Create(const Dataset& dataset,
                                                         double space_ratio,
                                                         uint64_t seed) {
  if (dataset.empty()) {
    return Status::InvalidArgument("dataset is empty");
  }
  if (space_ratio <= 0.0) {
    return Status::InvalidArgument("space_ratio must be positive");
  }
  std::unique_ptr<KmvSearcher> s(new KmvSearcher(dataset));
  const uint64_t budget = static_cast<uint64_t>(
      space_ratio * static_cast<double>(dataset.total_elements()));
  s->k_ = std::max<size_t>(1, budget / dataset.size());  // Theorem 1: ⌊b/m⌋
  s->seed_ = seed;
  s->sketches_.reserve(dataset.size());
  s->record_sizes_.reserve(dataset.size());
  for (size_t i = 0; i < dataset.size(); ++i) {
    KmvSketch sketch = KmvSketch::Build(dataset.record(i), s->k_, seed);
    s->space_units_ += sketch.SpaceUnits();
    s->sketches_.push_back(std::move(sketch));
    s->record_sizes_.push_back(static_cast<uint32_t>(dataset.record(i).size()));
  }
  return s;
}

std::vector<RecordId> KmvSearcher::Search(const Record& query,
                                          double threshold) const {
  std::vector<RecordId> out;
  if (query.empty()) return out;
  const size_t q = query.size();
  const double theta = threshold * static_cast<double>(q);
  const uint32_t min_size = static_cast<uint32_t>(std::ceil(theta - 1e-9));
  const KmvSketch query_sketch = KmvSketch::Build(query, k_, seed_);
  for (size_t i = 0; i < sketches_.size(); ++i) {
    if (record_sizes_[i] < min_size) continue;
    const KmvPairEstimate est = EstimateKmvPair(query_sketch, sketches_[i]);
    const double cap =
        static_cast<double>(std::min<uint32_t>(q, record_sizes_[i]));
    if (std::min(est.intersection_size, cap) >= theta - 1e-9) {
      out.push_back(static_cast<RecordId>(i));
    }
  }
  return out;
}

}  // namespace gbkmv
