#include "index/gbkmv_index.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/hash.h"
#include "common/thread_pool.h"
#include "obs/trace.h"
#include "sketch/parallel_build.h"
#include "storage/query_context.h"

namespace gbkmv {

namespace {

// O(1) G-KMV pair estimate from summary quantities (see header).
double GkmvEstimateFromCounts(size_t k_intersect, size_t q_size, size_t x_size,
                              uint64_t q_max, uint64_t x_max) {
  if (q_size == 0 || x_size == 0) return 0.0;
  const size_t k = q_size + x_size - k_intersect;
  if (k < 2) return 0.0;
  const double u_k = HashToUnit(std::max(q_max, x_max));
  if (u_k <= 0.0) return 0.0;
  const double kd = static_cast<double>(k);
  return static_cast<double>(k_intersect) / kd * (kd - 1.0) / u_k;
}

}  // namespace

Result<GbKmvSketcher> GbKmvIndexSearcher::MakeSketcher(
    const Dataset& dataset, const GbKmvIndexOptions& options) {
  if (dataset.empty()) {
    return Status::InvalidArgument("dataset is empty");
  }
  uint64_t budget = options.budget_units;
  if (budget == 0) {
    if (options.space_ratio <= 0.0) {
      return Status::InvalidArgument("space_ratio must be positive");
    }
    budget = static_cast<uint64_t>(
        options.space_ratio * static_cast<double>(dataset.total_elements()));
  }
  if (budget == 0) {
    return Status::InvalidArgument("budget resolves to zero units");
  }
  size_t buffer_bits = options.buffer_bits;
  if (buffer_bits == GbKmvIndexOptions::kAutoBuffer) {
    buffer_bits = ChooseBufferSize(dataset, budget, options.cost_model);
  }
  GbKmvOptions sk_options;
  sk_options.budget_units = budget;
  sk_options.buffer_bits = buffer_bits;
  sk_options.seed = options.seed;
  return GbKmvSketcher::Create(dataset, sk_options);
}

Result<std::unique_ptr<GbKmvIndexSearcher>> GbKmvIndexSearcher::Create(
    const Dataset& dataset, const GbKmvIndexOptions& options) {
  Result<GbKmvSketcher> sketcher = MakeSketcher(dataset, options);
  if (!sketcher.ok()) return sketcher.status();
  return CreateWithSketcher(dataset, std::move(sketcher.value()),
                            options.num_threads);
}

Result<std::unique_ptr<GbKmvIndexSearcher>>
GbKmvIndexSearcher::CreateWithSketcher(const Dataset& dataset,
                                       GbKmvSketcher sketcher,
                                       size_t num_threads) {
  if (dataset.empty()) {
    return Status::InvalidArgument("dataset is empty");
  }
  std::unique_ptr<GbKmvIndexSearcher> s(new GbKmvIndexSearcher(&dataset));
  const size_t buffer_bits = sketcher.buffer_bits();
  s->chosen_buffer_bits_ = buffer_bits;
  s->sketcher_ = std::make_unique<GbKmvSketcher>(std::move(sketcher));

  const std::unique_ptr<ThreadPool> pool =
      MakeBuildPool(num_threads, dataset.size());
  const std::vector<GbKmvSketch> sketches =
      BuildSketchesParallel(dataset, *s->sketcher_, pool.get());
  s->owned_record_sizes_.reserve(dataset.size());
  for (size_t i = 0; i < dataset.size(); ++i) {
    s->space_units_ += sketches[i].SpaceUnits(buffer_bits);
    s->owned_record_sizes_.push_back(
        static_cast<uint32_t>(dataset.record(i).size()));
  }
  GBKMV_RETURN_IF_ERROR(s->AdoptSketches(sketches));
  s->BuildQueryStructures();
  return s;
}

Result<std::unique_ptr<GbKmvIndexSearcher>> GbKmvIndexSearcher::Merge(
    std::span<const MergeSource> sources, const Dataset& dataset) {
  if (sources.empty()) {
    return Status::InvalidArgument("merge needs at least one source");
  }
  for (const MergeSource& src : sources) {
    if (src.searcher == nullptr) {
      return Status::InvalidArgument("null merge source");
    }
    // An empty mask means "no tombstones" (callers size masks lazily).
    if (src.deleted != nullptr && !src.deleted->empty() &&
        src.deleted->size() != src.searcher->num_records()) {
      return Status::InvalidArgument(
          "tombstone mask size disagrees with its shard");
    }
  }
  const GbKmvIndexSearcher& first = *sources[0].searcher;
  size_t survivors = 0;
  size_t total_hashes = 0;
  for (const MergeSource& src : sources) {
    const GbKmvIndexSearcher& s = *src.searcher;
    if (s.chosen_buffer_bits_ != first.chosen_buffer_bits_ ||
        s.words_per_record_ != first.words_per_record_ ||
        s.sketch_threshold_ != first.sketch_threshold_) {
      return Status::InvalidArgument(
          "merge sources disagree on sketcher parameters");
    }
    for (size_t i = 0; i < s.num_records(); ++i) {
      if (src.deleted != nullptr && i < src.deleted->size() &&
          (*src.deleted)[i] != 0) {
        continue;
      }
      ++survivors;
      total_hashes += s.HashesOf(static_cast<RecordId>(i)).size();
    }
  }
  if (survivors == 0) {
    return Status::InvalidArgument("every merge row is tombstoned");
  }
  if (dataset.size() != survivors) {
    return Status::InvalidArgument(
        "survivor dataset size disagrees with the merge sources");
  }

  std::unique_ptr<GbKmvIndexSearcher> merged(
      new GbKmvIndexSearcher(&dataset));
  merged->chosen_buffer_bits_ = first.chosen_buffer_bits_;
  merged->sketcher_ = std::make_unique<GbKmvSketcher>(*first.sketcher_);
  merged->words_per_record_ = first.words_per_record_;
  merged->sketch_threshold_ = first.sketch_threshold_;
  merged->owned_record_sizes_.reserve(survivors);
  merged->owned_buffer_words_.reserve(survivors * first.words_per_record_);
  merged->owned_hash_offsets_.reserve(survivors + 1);
  merged->owned_hash_offsets_.push_back(0);
  merged->owned_hashes_.reserve(total_hashes);
  const uint64_t buffer_units = (first.chosen_buffer_bits_ + 31) / 32;
  for (const MergeSource& src : sources) {
    const GbKmvIndexSearcher& s = *src.searcher;
    for (size_t i = 0; i < s.num_records(); ++i) {
      if (src.deleted != nullptr && i < src.deleted->size() &&
          (*src.deleted)[i] != 0) {
        continue;
      }
      const RecordId id = static_cast<RecordId>(i);
      const size_t row = merged->owned_record_sizes_.size();
      if (dataset.record(row).size() != s.record_sizes_[id]) {
        return Status::InvalidArgument(
            "survivor dataset rows disagree with the merge sources");
      }
      merged->owned_record_sizes_.push_back(s.record_sizes_[id]);
      const std::span<const uint64_t> words = s.BufferWordsOf(id);
      merged->owned_buffer_words_.insert(merged->owned_buffer_words_.end(),
                                         words.begin(), words.end());
      const std::span<const uint64_t> values = s.HashesOf(id);
      merged->owned_hashes_.insert(merged->owned_hashes_.end(),
                                   values.begin(), values.end());
      merged->owned_hash_offsets_.push_back(merged->owned_hashes_.size());
      merged->space_units_ += buffer_units + values.size();
    }
  }
  merged->record_sizes_ =
      std::span<const uint32_t>(merged->owned_record_sizes_);
  merged->buffer_words_ =
      std::span<const uint64_t>(merged->owned_buffer_words_);
  merged->hash_offsets_ =
      std::span<const uint64_t>(merged->owned_hash_offsets_);
  merged->hashes_ = std::span<const uint64_t>(merged->owned_hashes_);
  merged->BuildQueryStructures();
  return merged;
}

Status GbKmvIndexSearcher::AdoptSketches(
    const std::vector<GbKmvSketch>& sketches) {
  const size_t m = sketches.size();
  words_per_record_ = (chosen_buffer_bits_ + 63) / 64;
  sketch_threshold_ = sketcher_->global_threshold();
  owned_buffer_words_.clear();
  owned_buffer_words_.reserve(m * words_per_record_);
  owned_hash_offsets_.assign(1, 0);
  owned_hash_offsets_.reserve(m + 1);
  owned_hashes_.clear();
  for (const GbKmvSketch& sketch : sketches) {
    const std::span<const uint64_t> words = sketch.buffer.words();
    GBKMV_CHECK(words.size() == words_per_record_);
    owned_buffer_words_.insert(owned_buffer_words_.end(), words.begin(),
                               words.end());
    // The flat store keeps ONE threshold; a stored sketch disagreeing with
    // the sketcher it travels with could not have been built by it.
    if (sketch.gkmv.threshold() != sketch_threshold_) {
      return Status::Corruption(
          "sketch threshold disagrees with the sketcher");
    }
    const std::vector<uint64_t>& values = sketch.gkmv.values();
    owned_hashes_.insert(owned_hashes_.end(), values.begin(), values.end());
    owned_hash_offsets_.push_back(owned_hashes_.size());
  }
  record_sizes_ = std::span<const uint32_t>(owned_record_sizes_);
  buffer_words_ = std::span<const uint64_t>(owned_buffer_words_);
  hash_offsets_ = std::span<const uint64_t>(owned_hash_offsets_);
  hashes_ = std::span<const uint64_t>(owned_hashes_);
  return Status::OK();
}

void GbKmvIndexSearcher::BuildQueryStructures(bool rebuild_postings) {
  const size_t m = num_records();
  if (rebuild_postings) {
    // Enumerating in record order makes the flat layout a pure function of
    // the sketches — byte-identical for any build thread count.
    hash_postings_ = FlatHashPostings::Build([this, m](const auto& fn) {
      for (size_t i = 0; i < m; ++i) {
        for (uint64_t h : HashesOf(static_cast<RecordId>(i))) {
          fn(h, static_cast<RecordId>(i));
        }
      }
    });
  }
  by_size_.resize(m);
  std::iota(by_size_.begin(), by_size_.end(), 0);
  std::sort(by_size_.begin(), by_size_.end(), [this](RecordId a, RecordId b) {
    return record_sizes_[a] != record_sizes_[b]
               ? record_sizes_[a] < record_sizes_[b]
               : a < b;
  });
  sorted_sizes_.clear();
  sorted_sizes_.reserve(m);
  for (RecordId id : by_size_) sorted_sizes_.push_back(record_sizes_[id]);
  // The buffer-only pass never needs records whose buffer bitmap is empty;
  // filtering them once at build time saves a per-record word scan on every
  // query.
  buffered_by_size_.clear();
  buffered_sorted_sizes_.clear();
  for (size_t pos = 0; pos < m; ++pos) {
    const RecordId id = by_size_[pos];
    const std::span<const uint64_t> words = BufferWordsOf(id);
    const bool empty =
        std::all_of(words.begin(), words.end(),
                    [](uint64_t w) { return w == 0; });
    if (!empty) {
      buffered_by_size_.push_back(id);
      buffered_sorted_sizes_.push_back(sorted_sizes_[pos]);
    }
  }
}

QueryResponse GbKmvIndexSearcher::SearchQ(const QueryRequest& request,
                                          QueryContext& ctx) const {
  QueryResponse response;
  const Record& query = *request.record;
  if (query.empty()) return response;
  const size_t q = query.size();
  const double theta = request.threshold * static_cast<double>(q);
  const double inv_q = 1.0 / static_cast<double>(q);
  // Partition lower bound: |X| >= ⌈θ⌉ is necessary for |Q∩X| >= θ.
  const uint32_t min_size =
      static_cast<uint32_t>(std::ceil(theta - 1e-9));

  // Stage timers record into the thread-local span sink installed around a
  // traced shard search, and cost a thread-local load otherwise
  // (obs/trace.h). They never touch the response.
  obs::StageTimer sketch_timer(obs::Stage::kSketch);
  const GbKmvSketch query_sketch = sketcher_->Sketch(query);
  sketch_timer.Stop();
  const std::vector<uint64_t>& q_hashes = query_sketch.gkmv.values();
  const size_t q_sketch_size = q_hashes.size();
  const uint64_t q_max = q_hashes.empty() ? 0 : q_hashes.back();

  HitCollector collector(request, ctx, &response);

  // ScanCount over the sketch-hash inverted index -> exact K∩ per record.
  // K∩ <= |L_Q|, so the guard-free bump applies for any realistic sketch.
  obs::StageTimer scan_timer(obs::Stage::kScan);
  ctx.Begin(num_records());
  if (q_sketch_size < QueryContext::kSaturated) {
    for (uint64_t h : q_hashes) {
      const std::span<const RecordId> row = hash_postings_.Find(h);
      response.stats.postings_scanned += row.size();
      ctx.BumpRowUnchecked(row);
    }
  } else {
    for (uint64_t h : q_hashes) {
      const std::span<const RecordId> row = hash_postings_.Find(h);
      response.stats.postings_scanned += row.size();
      ctx.BumpRow(row);
    }
  }
  scan_timer.Stop();

  obs::StageTimer refine_timer(obs::Stage::kRefine);
  const bool query_buffer_empty = query_sketch.buffer.Empty();
  const std::span<const uint64_t> q_words = query_sketch.buffer.words();
  auto score = [&](RecordId id, size_t k_intersect) -> double {
    const size_t o1 =
        query_buffer_empty
            ? 0
            : Bitmap::IntersectCountWords(q_words, BufferWordsOf(id));
    const std::span<const uint64_t> x_hashes = HashesOf(id);
    const uint64_t x_max = x_hashes.empty() ? 0 : x_hashes.back();
    const double d_hat = GkmvEstimateFromCounts(
        k_intersect, q_sketch_size, x_hashes.size(), q_max, x_max);
    // The true intersection cannot exceed either set size; both are known
    // exactly, so clamp the noisy sketch estimate (cuts false positives at
    // high thresholds without affecting recall).
    const double cap = static_cast<double>(
        std::min<size_t>(q, record_sizes_[id]));
    return std::min(static_cast<double>(o1) + d_hat, cap);
  };

  // Records with sketch-hash overlap. Stats are batch-counted (touched
  // minus pruned) — a per-candidate increment in this loop is measurable.
  size_t size_pruned = 0;
  for (RecordId id : ctx.touched()) {
    const size_t k_intersect = ctx.CountOf(id);
    if (record_sizes_[id] < min_size) {
      ++size_pruned;
      continue;
    }
    const double estimate = score(id, k_intersect);
    if (estimate >= theta - 1e-9) collector.Add(id, estimate * inv_q);
  }
  response.stats.candidates_generated += ctx.touched().size() - size_pruned;

  // Records that can qualify on the buffer alone (K∩ = 0): scan the
  // size-eligible suffix of the non-empty-buffer order with the bitmap fast
  // path. Touched records are skipped — they were fully scored above, and
  // their score is >= o1, so any buffer-only qualifier among them is
  // already collected.
  if (!query_buffer_empty) {
    const auto begin_it =
        std::lower_bound(buffered_sorted_sizes_.begin(),
                         buffered_sorted_sizes_.end(), min_size);
    const size_t begin_pos =
        static_cast<size_t>(begin_it - buffered_sorted_sizes_.begin());
    size_t skipped = 0;  // already scored through the hash postings
    for (size_t pos = begin_pos; pos < buffered_by_size_.size(); ++pos) {
      const RecordId id = buffered_by_size_[pos];
      if (ctx.CountOf(id) > 0) {
        ++skipped;
        continue;
      }
      const size_t o1 =
          Bitmap::IntersectCountWords(q_words, BufferWordsOf(id));
      if (static_cast<double>(o1) >= theta - 1e-9) {
        // K∩ = 0, so the full estimator reduces to the buffer overlap.
        collector.Add(id, static_cast<double>(o1) * inv_q);
      }
    }
    // The buffer pass reads stored bitmaps, not postings; count one index
    // entry per examined record so the work is visible in the stats
    // (batch-counted: the per-record increments cost in this loop).
    const size_t examined = buffered_by_size_.size() - begin_pos - skipped;
    response.stats.candidates_generated += examined;
    response.stats.postings_scanned += examined;
  }

  collector.Finish();
  refine_timer.Stop();
  return response;
}

double GbKmvIndexSearcher::EstimateContainment(const Record& query,
                                               RecordId id) const {
  if (query.empty()) return 0.0;
  const GbKmvSketch query_sketch = sketcher_->Sketch(query);
  // Cold path (tests / diagnostics): reassemble the record's sketch from
  // its flat-store slices and run the full pair estimator.
  const std::span<const uint64_t> words = BufferWordsOf(id);
  const std::span<const uint64_t> values = HashesOf(id);
  GbKmvSketch x;
  x.buffer = Bitmap::FromWords(
      chosen_buffer_bits_,
      std::vector<uint64_t>(words.begin(), words.end()));
  x.gkmv = GkmvSketch::FromParts(
      std::vector<uint64_t>(values.begin(), values.end()), sketch_threshold_);
  const double raw =
      GbKmvSketcher::EstimatePair(query_sketch, x).intersection_size;
  const double cap =
      static_cast<double>(std::min<size_t>(query.size(), record_sizes_[id]));
  return std::min(raw, cap) / static_cast<double>(query.size());
}

Result<std::unique_ptr<KmvSearcher>> KmvSearcher::Create(const Dataset& dataset,
                                                         double space_ratio,
                                                         uint64_t seed,
                                                         size_t num_threads) {
  if (dataset.empty()) {
    return Status::InvalidArgument("dataset is empty");
  }
  if (space_ratio <= 0.0) {
    return Status::InvalidArgument("space_ratio must be positive");
  }
  std::unique_ptr<KmvSearcher> s(new KmvSearcher(dataset));
  const uint64_t budget = static_cast<uint64_t>(
      space_ratio * static_cast<double>(dataset.total_elements()));
  s->k_ = std::max<size_t>(1, budget / dataset.size());  // Theorem 1: ⌊b/m⌋
  s->seed_ = seed;
  const std::unique_ptr<ThreadPool> pool =
      MakeBuildPool(num_threads, dataset.size());
  s->sketches_ = BuildKmvSketchesParallel(dataset, s->k_, seed, pool.get());
  s->record_sizes_.reserve(dataset.size());
  for (size_t i = 0; i < dataset.size(); ++i) {
    s->space_units_ += s->sketches_[i].SpaceUnits();
    s->record_sizes_.push_back(static_cast<uint32_t>(dataset.record(i).size()));
  }
  return s;
}

QueryResponse KmvSearcher::SearchQ(const QueryRequest& request,
                                   QueryContext& ctx) const {
  QueryResponse response;
  const Record& query = *request.record;
  if (query.empty()) return response;
  const size_t q = query.size();
  const double theta = request.threshold * static_cast<double>(q);
  const double inv_q = 1.0 / static_cast<double>(q);
  const uint32_t min_size = static_cast<uint32_t>(std::ceil(theta - 1e-9));
  const KmvSketch query_sketch = KmvSketch::Build(query, k_, seed_);
  HitCollector collector(request, ctx, &response);
  for (size_t i = 0; i < sketches_.size(); ++i) {
    if (record_sizes_[i] < min_size) continue;
    ++response.stats.candidates_generated;
    // "Postings" of the pairwise estimators: stored sketch values merged.
    response.stats.postings_scanned +=
        query_sketch.size() + sketches_[i].size();
    const KmvPairEstimate est = EstimateKmvPair(query_sketch, sketches_[i]);
    const double cap =
        static_cast<double>(std::min<uint32_t>(q, record_sizes_[i]));
    const double estimate = std::min(est.intersection_size, cap);
    if (estimate >= theta - 1e-9) {
      collector.Add(static_cast<RecordId>(i), estimate * inv_q);
    }
  }
  collector.Finish();
  return response;
}

}  // namespace gbkmv
