#include "index/searcher.h"

#include <algorithm>

namespace gbkmv {

std::vector<std::vector<RecordId>> ContainmentSearcher::BatchQuery(
    std::span<const Record> queries, double threshold,
    size_t num_threads) const {
  (void)num_threads;  // The reference implementation is sequential.
  std::vector<std::vector<RecordId>> results;
  results.reserve(queries.size());
  for (const Record& q : queries) results.push_back(Search(q, threshold));
  return results;
}

std::vector<std::vector<RecordId>> ParallelBatchQuery(
    const ContainmentSearcher& searcher, std::span<const Record> queries,
    double threshold, size_t num_threads) {
  if (num_threads == 0) num_threads = DefaultThreads();
  std::vector<std::vector<RecordId>> results(queries.size());
  if (queries.empty()) return results;
  if (num_threads == 1) {
    for (size_t i = 0; i < queries.size(); ++i) {
      results[i] = searcher.Search(queries[i], threshold);
    }
    return results;
  }
  ThreadPool pool(num_threads);
  // No per-chunk scratch, so a fine grain (several chunks per worker) is
  // free and keeps skewed query costs balanced.
  const size_t grain =
      std::max<size_t>(1, queries.size() / (8 * pool.num_threads()));
  pool.ParallelFor(0, queries.size(), grain,
                   [&](size_t begin, size_t end, size_t /*chunk*/) {
                     for (size_t i = begin; i < end; ++i) {
                       results[i] = searcher.Search(queries[i], threshold);
                     }
                   });
  return results;
}

}  // namespace gbkmv
