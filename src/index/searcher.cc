#include "index/searcher.h"

#include <algorithm>

#include "common/timer.h"
#include "obs/metrics.h"

namespace gbkmv {

namespace {

// Aggregate QueryStats from every search that flows through the shared
// batch engine (docs/observability.md). Recording happens once per query /
// once per chunk, never inside a posting loop, so the hot path is
// unchanged; the stats themselves are computed regardless (QueryResponse
// always carries them).
struct SearchMetrics {
  obs::Counter* queries = nullptr;
  obs::Counter* candidates_generated = nullptr;
  obs::Counter* candidates_refined = nullptr;
  obs::Counter* postings_scanned = nullptr;
  obs::Counter* heap_evictions = nullptr;
  obs::Histogram* latency_ns = nullptr;
};

const SearchMetrics& Metrics() {
  static const SearchMetrics metrics = [] {
    obs::MetricsRegistry& registry = obs::GlobalMetrics();
    SearchMetrics m;
    m.queries = registry.GetCounter("gbkmv_search_queries_total");
    m.candidates_generated =
        registry.GetCounter("gbkmv_search_candidates_generated_total");
    m.candidates_refined =
        registry.GetCounter("gbkmv_search_candidates_refined_total");
    m.postings_scanned =
        registry.GetCounter("gbkmv_search_postings_scanned_total");
    m.heap_evictions =
        registry.GetCounter("gbkmv_search_heap_evictions_total");
    m.latency_ns = registry.GetHistogram("gbkmv_search_latency_ns");
    return m;
  }();
  return metrics;
}

// One query through SearchQ, with per-query latency and stats recording.
// The latency timestamp pair is skipped entirely while the registry is
// disabled.
QueryResponse InstrumentedSearch(const ContainmentSearcher& searcher,
                                 const QueryRequest& request,
                                 QueryContext& ctx, bool enabled) {
  if (!enabled) return searcher.SearchQ(request, ctx);
  const uint64_t start_ns = MonotonicNanos();
  QueryResponse response = searcher.SearchQ(request, ctx);
  const SearchMetrics& m = Metrics();
  m.latency_ns->Record(MonotonicNanos() - start_ns);
  m.queries->Add(1);
  m.candidates_generated->Add(response.stats.candidates_generated);
  m.candidates_refined->Add(response.stats.candidates_refined);
  m.postings_scanned->Add(response.stats.postings_scanned);
  m.heap_evictions->Add(response.stats.heap_evictions);
  return response;
}

}  // namespace

std::vector<RecordId> ContainmentSearcher::Search(const Record& query,
                                                  double threshold) const {
  QueryRequest request(query, threshold);
  request.want_scores = false;  // boolean path: ids only
  const QueryResponse response = SearchQ(request, ThreadLocalQueryContext());
  std::vector<RecordId> out;
  out.reserve(response.hits.size());
  for (const QueryHit& hit : response.hits) out.push_back(hit.id);
  return out;
}

std::vector<QueryResponse> ContainmentSearcher::BatchSearchQ(
    std::span<const QueryRequest> requests, size_t num_threads) const {
  return ParallelBatchQuery(*this, requests, num_threads);
}

std::vector<std::vector<RecordId>> ContainmentSearcher::BatchQuery(
    std::span<const Record> queries, double threshold,
    size_t num_threads) const {
  std::vector<QueryRequest> requests;
  requests.reserve(queries.size());
  for (const Record& q : queries) {
    QueryRequest request(q, threshold);
    request.want_scores = false;
    requests.push_back(request);
  }
  const std::vector<QueryResponse> responses =
      BatchSearchQ(requests, num_threads);
  std::vector<std::vector<RecordId>> results(responses.size());
  for (size_t i = 0; i < responses.size(); ++i) {
    results[i].reserve(responses[i].hits.size());
    for (const QueryHit& hit : responses[i].hits) {
      results[i].push_back(hit.id);
    }
  }
  return results;
}

std::vector<QueryResponse> ParallelBatchQuery(
    const ContainmentSearcher& searcher,
    std::span<const QueryRequest> requests, size_t num_threads) {
  if (num_threads == 0) num_threads = DefaultThreads();
  std::vector<QueryResponse> results(requests.size());
  if (requests.empty()) return results;
  const bool obs_enabled = obs::GlobalMetrics().enabled();
  if (num_threads == 1) {
    QueryContext& ctx = ThreadLocalQueryContext();
    for (size_t i = 0; i < requests.size(); ++i) {
      results[i] = InstrumentedSearch(searcher, requests[i], ctx,
                                      obs_enabled);
    }
    return results;
  }
  ThreadPool pool(num_threads);
  // No per-chunk scratch beyond the thread-local arena, so a fine grain
  // (several chunks per worker) is free and keeps skewed query costs
  // balanced.
  const size_t grain =
      std::max<size_t>(1, requests.size() / (8 * pool.num_threads()));
  pool.ParallelFor(0, requests.size(), grain,
                   [&](size_t begin, size_t end, size_t /*chunk*/) {
                     QueryContext& ctx = ThreadLocalQueryContext();
                     for (size_t i = begin; i < end; ++i) {
                       results[i] = InstrumentedSearch(
                           searcher, requests[i], ctx, obs_enabled);
                     }
                   });
  return results;
}

}  // namespace gbkmv
