#include "index/searcher.h"

#include <algorithm>

namespace gbkmv {

std::vector<RecordId> ContainmentSearcher::Search(const Record& query,
                                                  double threshold) const {
  QueryRequest request(query, threshold);
  request.want_scores = false;  // boolean path: ids only
  const QueryResponse response = SearchQ(request, ThreadLocalQueryContext());
  std::vector<RecordId> out;
  out.reserve(response.hits.size());
  for (const QueryHit& hit : response.hits) out.push_back(hit.id);
  return out;
}

std::vector<QueryResponse> ContainmentSearcher::BatchSearchQ(
    std::span<const QueryRequest> requests, size_t num_threads) const {
  return ParallelBatchQuery(*this, requests, num_threads);
}

std::vector<std::vector<RecordId>> ContainmentSearcher::BatchQuery(
    std::span<const Record> queries, double threshold,
    size_t num_threads) const {
  std::vector<QueryRequest> requests;
  requests.reserve(queries.size());
  for (const Record& q : queries) {
    QueryRequest request(q, threshold);
    request.want_scores = false;
    requests.push_back(request);
  }
  const std::vector<QueryResponse> responses =
      BatchSearchQ(requests, num_threads);
  std::vector<std::vector<RecordId>> results(responses.size());
  for (size_t i = 0; i < responses.size(); ++i) {
    results[i].reserve(responses[i].hits.size());
    for (const QueryHit& hit : responses[i].hits) {
      results[i].push_back(hit.id);
    }
  }
  return results;
}

std::vector<QueryResponse> ParallelBatchQuery(
    const ContainmentSearcher& searcher,
    std::span<const QueryRequest> requests, size_t num_threads) {
  if (num_threads == 0) num_threads = DefaultThreads();
  std::vector<QueryResponse> results(requests.size());
  if (requests.empty()) return results;
  if (num_threads == 1) {
    QueryContext& ctx = ThreadLocalQueryContext();
    for (size_t i = 0; i < requests.size(); ++i) {
      results[i] = searcher.SearchQ(requests[i], ctx);
    }
    return results;
  }
  ThreadPool pool(num_threads);
  // No per-chunk scratch beyond the thread-local arena, so a fine grain
  // (several chunks per worker) is free and keeps skewed query costs
  // balanced.
  const size_t grain =
      std::max<size_t>(1, requests.size() / (8 * pool.num_threads()));
  pool.ParallelFor(0, requests.size(), grain,
                   [&](size_t begin, size_t end, size_t /*chunk*/) {
                     QueryContext& ctx = ThreadLocalQueryContext();
                     for (size_t i = begin; i < end; ++i) {
                       results[i] = searcher.SearchQ(requests[i], ctx);
                     }
                   });
  return results;
}

}  // namespace gbkmv
