#include "index/searcher_registry.h"

#include <cstdlib>
#include <cstring>
#include <utility>

#include "index/dynamic_index.h"
#include "index/freqset.h"
#include "index/gbkmv_index.h"
#include "index/lsh_ensemble.h"
#include "io/mmap_snapshot.h"
#include "io/snapshot.h"

namespace gbkmv {

std::vector<std::string> RegisteredSnapshotKinds() {
  return {GbKmvIndexSearcher::kSnapshotKind, DynamicGbKmvIndex::kSnapshotKind,
          LshEnsembleSearcher::kSnapshotKind, FreqSetSearcher::kSnapshotKind};
}

Result<std::string> ReadSearcherSnapshotKind(const std::string& path) {
  Result<io::SnapshotReader> snapshot = io::SnapshotReader::Open(path);
  if (!snapshot.ok()) return snapshot.status();
  Result<io::SnapshotMeta> meta = io::ReadSnapshotMeta(*snapshot);
  if (!meta.ok()) return meta.status();
  return meta->kind;
}

namespace {

// Loads the dataset section into an owned Dataset.
Result<std::unique_ptr<Dataset>> LoadEmbeddedDataset(
    const io::SnapshotReader& snapshot) {
  Result<io::Reader> section = snapshot.Section(io::kSectionDataset);
  if (!section.ok()) return section.status();
  Result<Dataset> dataset = Dataset::LoadFrom(&section.value());
  if (!dataset.ok()) return dataset.status();
  return std::make_unique<Dataset>(std::move(dataset.value()));
}

}  // namespace

Result<LoadedSearcher> LoadSearcherSnapshot(const std::string& path) {
  Result<io::SnapshotReader> snapshot = io::SnapshotReader::Open(path);
  if (!snapshot.ok()) return snapshot.status();
  Result<io::SnapshotMeta> meta = io::ReadSnapshotMeta(*snapshot);
  if (!meta.ok()) return meta.status();
  if (meta->kind == io::kShardedManifestKind) {
    return Status::InvalidArgument(
        "this is a sharded-service manifest, not a single-searcher "
        "snapshot; load the directory with ShardedContainmentService::Load "
        "(gbkmv_cli serve-query)");
  }

  LoadedSearcher loaded;
  if (meta->kind == DynamicGbKmvIndex::kSnapshotKind) {
    Result<std::unique_ptr<DynamicGbKmvIndex>> index =
        DynamicGbKmvIndex::LoadFrom(*snapshot);
    if (!index.ok()) return index.status();
    loaded.searcher = std::move(index.value());
    return loaded;
  }
  if (meta->kind == GbKmvIndexSearcher::kSnapshotKind) {
    Result<std::unique_ptr<Dataset>> dataset = LoadEmbeddedDataset(*snapshot);
    if (!dataset.ok()) return dataset.status();
    Result<std::unique_ptr<GbKmvIndexSearcher>> searcher =
        GbKmvIndexSearcher::LoadFrom(*snapshot, **dataset);
    if (!searcher.ok()) return searcher.status();
    loaded.dataset = std::move(dataset.value());
    loaded.searcher = std::move(searcher.value());
    return loaded;
  }
  if (meta->kind == LshEnsembleSearcher::kSnapshotKind) {
    Result<std::unique_ptr<Dataset>> dataset = LoadEmbeddedDataset(*snapshot);
    if (!dataset.ok()) return dataset.status();
    Result<std::unique_ptr<LshEnsembleSearcher>> searcher =
        LshEnsembleSearcher::LoadFrom(*snapshot, **dataset);
    if (!searcher.ok()) return searcher.status();
    loaded.dataset = std::move(dataset.value());
    loaded.searcher = std::move(searcher.value());
    return loaded;
  }
  if (meta->kind == FreqSetSearcher::kSnapshotKind) {
    Result<std::unique_ptr<Dataset>> dataset = LoadEmbeddedDataset(*snapshot);
    if (!dataset.ok()) return dataset.status();
    Result<std::unique_ptr<FreqSetSearcher>> searcher =
        FreqSetSearcher::LoadFrom(*snapshot, **dataset);
    if (!searcher.ok()) return searcher.status();
    loaded.dataset = std::move(dataset.value());
    loaded.searcher = std::move(searcher.value());
    return loaded;
  }
  return Status::InvalidArgument("unknown searcher snapshot kind '" +
                                 meta->kind + "'");
}

Result<std::unique_ptr<ContainmentSearcher>> LoadSearcherSnapshot(
    const std::string& path, const Dataset& dataset) {
  Result<io::SnapshotReader> snapshot = io::SnapshotReader::Open(path);
  if (!snapshot.ok()) return snapshot.status();
  Result<io::SnapshotMeta> meta = io::ReadSnapshotMeta(*snapshot);
  if (!meta.ok()) return meta.status();

  if (meta->kind == DynamicGbKmvIndex::kSnapshotKind) {
    // The dynamic index owns its records, but the caller asked for a
    // searcher bound to `dataset` — honour the contract by verifying the
    // stored records are that dataset.
    if (meta->fingerprint != dataset.Fingerprint()) {
      return Status::InvalidArgument(
          "snapshot was built from a different dataset "
          "(fingerprint mismatch)");
    }
    Result<std::unique_ptr<DynamicGbKmvIndex>> index =
        DynamicGbKmvIndex::LoadFrom(*snapshot);
    if (!index.ok()) return index.status();
    return std::unique_ptr<ContainmentSearcher>(std::move(index.value()));
  }
  if (meta->kind == GbKmvIndexSearcher::kSnapshotKind) {
    Result<std::unique_ptr<GbKmvIndexSearcher>> searcher =
        GbKmvIndexSearcher::LoadFrom(*snapshot, dataset);
    if (!searcher.ok()) return searcher.status();
    return std::unique_ptr<ContainmentSearcher>(std::move(searcher.value()));
  }
  if (meta->kind == LshEnsembleSearcher::kSnapshotKind) {
    Result<std::unique_ptr<LshEnsembleSearcher>> searcher =
        LshEnsembleSearcher::LoadFrom(*snapshot, dataset);
    if (!searcher.ok()) return searcher.status();
    return std::unique_ptr<ContainmentSearcher>(std::move(searcher.value()));
  }
  if (meta->kind == FreqSetSearcher::kSnapshotKind) {
    Result<std::unique_ptr<FreqSetSearcher>> searcher =
        FreqSetSearcher::LoadFrom(*snapshot, dataset);
    if (!searcher.ok()) return searcher.status();
    return std::unique_ptr<ContainmentSearcher>(std::move(searcher.value()));
  }
  return Status::InvalidArgument("unknown searcher snapshot kind '" +
                                 meta->kind + "'");
}

bool ForceCopyLoad() {
  const char* env = std::getenv("GBKMV_FORCE_COPY_LOAD");
  return env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0;
}

Result<MappedSearcher> LoadSearcherSnapshotAuto(const std::string& path) {
  if (!ForceCopyLoad()) {
    Result<io::MmapSnapshot> mapped = io::MmapSnapshot::Open(path);
    if (mapped.ok()) {
      const io::SnapshotReader& reader = mapped->reader();
      Result<io::SnapshotMeta> meta = io::ReadSnapshotMeta(reader);
      if (!meta.ok()) return meta.status();
      if (meta->kind == GbKmvIndexSearcher::kSnapshotKind) {
        Result<std::unique_ptr<GbKmvIndexSearcher>> searcher =
            GbKmvIndexSearcher::LoadMapped(reader);
        if (!searcher.ok()) return searcher.status();
        MappedSearcher out;
        out.mapping =
            std::make_shared<io::MmapSnapshot>(std::move(mapped.value()));
        out.searcher = std::move(searcher.value());
        return out;
      }
      if (meta->kind == FreqSetSearcher::kSnapshotKind) {
        Result<std::unique_ptr<FreqSetSearcher>> searcher =
            FreqSetSearcher::LoadMapped(reader);
        if (!searcher.ok()) return searcher.status();
        MappedSearcher out;
        out.mapping =
            std::make_shared<io::MmapSnapshot>(std::move(mapped.value()));
        out.searcher = std::move(searcher.value());
        return out;
      }
      // Kind without an in-place serving mode: fall through to the copying
      // loader (the mapping is dropped here).
    } else if (mapped.status().code() != StatusCode::kFailedPrecondition) {
      // Real I/O or validation failure — not the "pre-v3 snapshot" signal
      // that means "use the copying loader".
      return mapped.status();
    }
  }
  Result<LoadedSearcher> loaded = LoadSearcherSnapshot(path);
  if (!loaded.ok()) return loaded.status();
  MappedSearcher out;
  out.dataset = std::move(loaded->dataset);
  out.searcher = std::move(loaded->searcher);
  return out;
}

}  // namespace gbkmv
