// MinHash LSH banding index — substrate of the LSH-E baseline — plus the
// plain MinHash-LSH searcher built directly on it (one global index, no size
// partitioning: the un-partitioned baseline LSH-E improves on).
//
// Signatures of k hash values are split into b bands of r rows (b·r <= k);
// two records collide if any band matches exactly. The S-curve collision
// probability for Jaccard similarity s is  P(s) = 1 − (1 − s^r)^b.
//
// Zhu et al. tune (b, r) per query threshold to minimise the expected number
// of false positives plus false negatives under a uniform similarity
// assumption; `OptimalBandParams` reproduces that optimisation over a fixed
// set of row counts whose bucket tables are all precomputed at build time
// (the role LSH Forest plays in the original system).

#ifndef GBKMV_INDEX_MINHASH_LSH_H_
#define GBKMV_INDEX_MINHASH_LSH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "data/dataset.h"
#include "index/searcher.h"
#include "sketch/minhash.h"
#include "storage/flat_hash_postings.h"

namespace gbkmv {

// P(collision) = 1 − (1 − s^r)^b.
double LshCollisionProbability(double jaccard, size_t bands, size_t rows);

struct BandParams {
  size_t bands = 0;
  size_t rows = 0;
};

// Minimises FP(s*) + FN(s*) = ∫_0^{s*} P(s) ds + ∫_{s*}^1 (1 − P(s)) ds over
// rows ∈ `row_choices` (bands = k / rows), by numeric integration.
BandParams OptimalBandParams(size_t signature_size, double jaccard_threshold,
                             const std::vector<size_t>& row_choices);

// Default row choices (powers of two up to the signature size).
std::vector<size_t> DefaultRowChoices(size_t signature_size);

// A banding index over a set of signatures, with bucket tables precomputed
// for every row choice so the (b, r) trade-off can be chosen per query.
class MinHashLshIndex {
 public:
  // `signatures[i]` is the signature of record `ids[i]`. All signatures must
  // have size `signature_size`.
  MinHashLshIndex(const std::vector<MinHashSignature>& signatures,
                  const std::vector<RecordId>& ids, size_t signature_size,
                  const std::vector<size_t>& row_choices);

  // Record ids colliding with `query_sig` in any band under `params`.
  // Duplicates removed. `params.rows` must be one of the row choices. A
  // non-null `bucket_entries_scanned` accumulates the total bucket entries
  // read across the probed bands (the LSH methods' postings_scanned).
  std::vector<RecordId> Query(const MinHashSignature& query_sig,
                              const BandParams& params,
                              uint64_t* bucket_entries_scanned = nullptr) const;

  size_t signature_size() const { return signature_size_; }
  const std::vector<size_t>& row_choices() const { return row_choices_; }

  // Resident storage of all bucket tables in 32-bit units (flat band-hash
  // keys + offsets + posting payloads + probe slots).
  uint64_t SpaceUnits() const;

 private:
  // One flat bucket table per (row choice, band): band hash -> record ids.
  struct RowTables {
    size_t rows = 0;
    size_t bands = 0;
    std::vector<FlatHashPostings> tables;
  };

  static uint64_t BandHash(const MinHashSignature& sig, size_t start,
                           size_t rows);

  size_t signature_size_;
  std::vector<size_t> row_choices_;
  std::vector<RowTables> per_row_;
};

struct MinHashLshOptions {
  size_t num_hashes = 256;
  uint64_t seed = 0x15483a9bULL;
  // Signature-build parallelism (byte-identical output for any value).
  // 0 = DefaultThreads(), 1 = serial.
  size_t num_threads = 0;
  // Size upper bound u for the Eq. 13 containment->Jaccard transform;
  // 0 = the bound dataset's max record size. The sharded service (src/serve)
  // sets it to the GLOBAL max so every shard picks the same Jaccard
  // threshold and band parameters — the only dataset-wide quantity the
  // query path reads, and therefore the only thing standing between a
  // per-shard build and bit-identical sharded results.
  size_t max_record_size_hint = 0;
};

// Plain MinHash-LSH containment search: one banding index over the whole
// dataset. The containment threshold t* maps to a Jaccard threshold through
// the transformation of Eq. 13 with the DATASET-WIDE size upper bound — no
// per-partition bounds, which is exactly the looseness LSH-E's equal-depth
// partitioning fixes. Like LSH-E, the band collisions ARE the answer (no
// verification); hit scores are containment re-estimated from the stored
// signatures with each record's true size (Eq. 14).
class MinHashLshSearcher : public ContainmentSearcher {
 public:
  static Result<std::unique_ptr<MinHashLshSearcher>> Create(
      const Dataset& dataset, const MinHashLshOptions& options);

  QueryResponse SearchQ(const QueryRequest& request,
                        QueryContext& ctx) const override;
  std::string name() const override { return "MinHash-LSH"; }
  uint64_t SpaceUnits() const override;
  // Paper measure: one unit per stored signature value (m·k).
  uint64_t BudgetSpaceUnits() const override {
    return static_cast<uint64_t>(dataset_.size()) * options_.num_hashes;
  }

 private:
  MinHashLshSearcher(const Dataset& dataset, const MinHashLshOptions& options)
      : dataset_(dataset),
        options_(options),
        family_(options.num_hashes, options.seed) {}

  const Dataset& dataset_;
  MinHashLshOptions options_;
  HashFamily family_;
  size_t max_record_size_ = 0;  // dataset-wide u for the Eq. 13 transform
  std::vector<MinHashSignature> signatures_;  // per record id
  std::unique_ptr<MinHashLshIndex> index_;
};

}  // namespace gbkmv

#endif  // GBKMV_INDEX_MINHASH_LSH_H_
