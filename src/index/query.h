// Query API v2: typed request/response objects shared by every containment
// search method (docs/query_api.md).
//
// The Definition-3 query ("all X with C(Q,X) >= t*") is served through a
// QueryRequest and answered with a QueryResponse whose hits carry the score
// each method already computes internally — exact containment for the exact
// methods, the estimator's value for the sketch methods, re-estimated
// containment for the LSH methods — so ranking, top-k serving and threshold
// sweeps never re-estimate from scratch. Top-k uses a bounded heap over the
// threshold-passing stream (score-then-id ordering, so results are
// deterministic for any thread count) rather than post-filtering.

#ifndef GBKMV_INDEX_QUERY_H_
#define GBKMV_INDEX_QUERY_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "data/record.h"
#include "storage/query_context.h"

namespace gbkmv {

using RecordId = uint32_t;

// One containment search. `record` is borrowed — it must outlive the call
// (requests are cheap value types, so batches are spans of these).
struct QueryRequest {
  const Record* record = nullptr;
  double threshold = 0.0;
  // Keep only the top_k best-scored qualifying hits; 0 = all of them.
  size_t top_k = 0;
  // When false (and top_k == 0) the searcher may skip score materialisation;
  // hit scores are then unspecified. Scores are always present with top_k.
  bool want_scores = true;
  // Caller intent marker for the diagnostics in QueryResponse::stats. The
  // counters are cheap (per-row, not per-posting), so searchers fill them
  // regardless; the flag lets front-ends decide whether to surface them.
  bool want_stats = false;

  // No default constructor: a request without a record is not a state any
  // SearchQ can serve, so it is unrepresentable.
  QueryRequest(const Record& r, double t) : record(&r), threshold(t) {}
};

// One qualifying record. `score` is the method's own containment value in
// [0, 1] (per-method definition in docs/query_api.md).
struct QueryHit {
  RecordId id = 0;
  float score = 0.0f;

  friend bool operator==(const QueryHit&, const QueryHit&) = default;
};

// Deterministic result ranking: higher score first, ties by ascending id.
inline bool BetterHit(float score_a, RecordId id_a, float score_b,
                      RecordId id_b) {
  return score_a != score_b ? score_a > score_b : id_a < id_b;
}

// What the index did for one query (per-method glossary in
// docs/query_api.md). Invariant: candidates_refined <= candidates_generated.
struct QueryStats {
  // Records that survived the method's cheap filters and were scored or
  // verified.
  uint64_t candidates_generated = 0;
  // Scored candidates that qualified (hit count before top-k truncation).
  uint64_t candidates_refined = 0;
  // Index entries read to generate the candidates: posting-list entries for
  // the inverted-index methods, merged sketch values for the pairwise
  // estimators, bucket entries for the LSH methods.
  uint64_t postings_scanned = 0;
  // Qualifying hits discarded by the bounded top-k heap (0 when top_k == 0).
  uint64_t heap_evictions = 0;
  // Serving-layer counters (src/serve, docs/sharding.md); always 0 for a
  // response produced by a searcher directly. shards_queried is the number
  // of index shards the sharded service fanned this query out to;
  // cache_hits is 1 when the response was served from the query-result
  // cache without touching any shard.
  uint64_t shards_queried = 0;
  uint64_t cache_hits = 0;

  friend bool operator==(const QueryStats&, const QueryStats&) = default;
};

struct QueryResponse {
  // top_k > 0: the k best by (score desc, id asc), in that order.
  // top_k == 0, want_scores: every qualifying record, ascending id.
  // top_k == 0, !want_scores (the boolean path): every qualifying record in
  //   the method's natural emission order — deterministic, but unspecified
  //   beyond that, exactly like the legacy Search contract; skipping the
  //   id-sort keeps the boolean path at legacy speed.
  std::vector<QueryHit> hits;
  QueryStats stats;

  friend bool operator==(const QueryResponse&, const QueryResponse&) =
      default;
};

// Accumulates the threshold-passing stream of one SearchQ call into a
// QueryResponse: unlimited queries append and id-sort, top-k queries keep a
// bounded heap in the QueryContext's reusable buffer. Finish() must be
// called exactly once; it also sets stats.candidates_refined to the number
// of Add() calls (every qualifying hit, kept or evicted).
class HitCollector {
 public:
  HitCollector(const QueryRequest& request, QueryContext& ctx,
               QueryResponse* response)
      : response_(response),
        top_k_(request.top_k),
        // Saturating: a pathological top_k near SIZE_MAX (e.g. a CLI "-1"
        // pushed through a size_t cast) must not wrap the lazy-window bound
        // below top_k and send the overflow branch past hits.size().
        lazy_limit_(top_k_ > std::numeric_limits<size_t>::max() -
                                 kLazyHeapSlack
                        ? std::numeric_limits<size_t>::max()
                        : top_k_ + kLazyHeapSlack),
        sort_unlimited_(request.want_scores),
        heap_(ctx.ScoreHeap()) {
    heap_.clear();
  }

  // How far past k the top-k path keeps appending before it switches to the
  // bounded heap. For result sets up to k + slack, top-k costs exactly what
  // the scored unlimited query costs (append, one final sort) — for small
  // overshoots the heap bookkeeping is slower than just sorting the lot.
  static constexpr size_t kLazyHeapSlack = 64;

  void Add(RecordId id, double score) {
    ++added_;
    const float s = static_cast<float>(score);
    if (top_k_ == 0 ||
        (!overflowed_ && response_->hits.size() < lazy_limit_)) {
      // Unlimited, or top-k still within the lazy window: plain append into
      // the response — the heap buffer is untouched.
      response_->hits.push_back({id, s});
      return;
    }
    if (!overflowed_) {
      // The lazy window overflowed: keep the k best collected so far in the
      // reusable heap buffer (worst at the root), discard the rest.
      std::vector<QueryHit>& hits = response_->hits;
      std::sort(hits.begin(), hits.end(),
                [](const QueryHit& a, const QueryHit& b) {
                  return BetterHit(a.score, a.id, b.score, b.id);
                });
      heap_.clear();
      for (size_t i = 0; i < top_k_; ++i) {
        heap_.push_back({hits[i].score, hits[i].id});
      }
      std::make_heap(heap_.begin(), heap_.end(), HeapOrder);
      evictions_ += hits.size() - top_k_;
      hits.clear();
      overflowed_ = true;
    }
    // Heap full: one qualifying hit is discarded either way — the incoming
    // one, or the current worst if the incoming hit beats it (replace the
    // root and sift down once; half the work of pop_heap + push_heap).
    // Evictions accumulate locally and flush in Finish() — a per-eviction
    // store through response_ is measurable on unselective queries.
    ++evictions_;
    const auto [worst_score, worst_id] = heap_.front();
    if (BetterHit(s, id, worst_score, worst_id)) {
      heap_.front() = {s, id};
      SiftDown();
    }
  }

  void Finish() {
    response_->stats.candidates_refined = added_;
    response_->stats.heap_evictions = evictions_;
    std::vector<QueryHit>& hits = response_->hits;
    if (top_k_ == 0) {
      if (sort_unlimited_) {
        std::sort(hits.begin(), hits.end(),
                  [](const QueryHit& a, const QueryHit& b) {
                    return a.id < b.id;
                  });
      }
      return;
    }
    if (!overflowed_) {  // the lazy window held: rank, then truncate to k
      std::sort(hits.begin(), hits.end(),
                [](const QueryHit& a, const QueryHit& b) {
                  return BetterHit(a.score, a.id, b.score, b.id);
                });
      if (hits.size() > top_k_) {
        evictions_ += hits.size() - top_k_;
        response_->stats.heap_evictions = evictions_;
        hits.resize(top_k_);
      }
      return;
    }
    std::sort(heap_.begin(), heap_.end(), HeapOrder);
    hits.reserve(heap_.size());
    for (const auto& [score, id] : heap_) hits.push_back({id, score});
  }

 private:
  // Heap comparator ("better" ordering): std::make_heap keeps the maximum
  // per this order at the front, i.e. the WORST kept hit — exactly what a
  // bounded best-k heap evicts first.
  static bool HeapOrder(const std::pair<float, uint32_t>& a,
                        const std::pair<float, uint32_t>& b) {
    return BetterHit(a.first, a.second, b.first, b.second);
  }

  // Restores the heap property after replacing the root.
  void SiftDown() {
    const size_t n = heap_.size();
    size_t i = 0;
    for (;;) {
      size_t largest = i;
      const size_t left = 2 * i + 1;
      const size_t right = left + 1;
      if (left < n && HeapOrder(heap_[largest], heap_[left])) largest = left;
      if (right < n && HeapOrder(heap_[largest], heap_[right])) {
        largest = right;
      }
      if (largest == i) return;
      std::swap(heap_[i], heap_[largest]);
      i = largest;
    }
  }

  QueryResponse* response_;
  size_t top_k_;
  size_t lazy_limit_;  // top_k_ + kLazyHeapSlack, saturating
  bool sort_unlimited_;
  bool overflowed_ = false;  // top-k only: more than k hits seen
  uint64_t added_ = 0;
  uint64_t evictions_ = 0;
  std::vector<std::pair<float, uint32_t>>& heap_;
};

}  // namespace gbkmv

#endif  // GBKMV_INDEX_QUERY_H_
