// Exact brute-force containment search: merge-intersect the query with every
// record. O(m · (|Q| + |X|)) per query — the ground-truth oracle for tests
// and experiment harnesses. Hit scores are exact containment |Q∩X|/|Q|.

#ifndef GBKMV_INDEX_BRUTE_FORCE_H_
#define GBKMV_INDEX_BRUTE_FORCE_H_

#include "data/dataset.h"
#include "index/searcher.h"

namespace gbkmv {

class BruteForceSearcher : public ContainmentSearcher {
 public:
  // Keeps a reference to `dataset`; the dataset must outlive the searcher.
  explicit BruteForceSearcher(const Dataset& dataset) : dataset_(dataset) {}

  QueryResponse SearchQ(const QueryRequest& request,
                        QueryContext& ctx) const override;
  std::string name() const override { return "BruteForce"; }
  uint64_t SpaceUnits() const override;
  bool exact() const override { return true; }

 private:
  const Dataset& dataset_;
};

}  // namespace gbkmv

#endif  // GBKMV_INDEX_BRUTE_FORCE_H_
