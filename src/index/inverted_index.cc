#include "index/inverted_index.h"

#include <algorithm>
#include <numeric>

#include "common/status.h"
#include "common/thread_pool.h"

namespace gbkmv {

namespace {

// The scan loops live in standalone noinline functions so their code
// generation is isolated from the per-query bookkeeping around them — the
// per-posting loops are sensitive enough that inlining them into a larger
// frame measurably changes their speed.
// Caller guarantees query.size() < QueryContext::kSaturated (counts cannot
// saturate), so the guard-free bump applies.
__attribute__((noinline)) void DenseScan(const PostingStore& store,
                                         const Record& query,
                                         QueryContext& ctx) {
  for (ElementId e : query) ctx.BumpRowUnchecked(store.Row(e));
}

// Fallback for degenerate queries with kSaturated or more elements: counts
// can exceed the inline 16-bit field, so every bump takes the exact
// (overflow-spilling) path.
__attribute__((noinline)) void DenseScanChecked(const PostingStore& store,
                                                const Record& query,
                                                QueryContext& ctx) {
  for (ElementId e : query) ctx.BumpRow(store.Row(e));
}

__attribute__((noinline)) void GenerateScan(const PostingStore& store,
                                            const Record& query,
                                            const std::vector<uint32_t>& skip,
                                            QueryContext& ctx) {
  size_t next = 0;
  for (size_t i = 0; i < query.size(); ++i) {
    if (next < skip.size() && skip[next] == i) {
      ++next;
      continue;
    }
    ctx.BumpRowUnchecked(store.Row(query[i]));
  }
}

__attribute__((noinline)) void RefineRows(const PostingStore& store,
                                          const Record& query,
                                          const std::vector<uint32_t>& rows,
                                          QueryContext& ctx) {
  const std::vector<uint32_t>& candidates = ctx.touched();
  for (uint32_t i : rows) {
    const std::span<const RecordId> row = store.Row(query[i]);
    if (row.size() > 128 * candidates.size()) {
      for (RecordId id : candidates) {
        if (std::binary_search(row.begin(), row.end(), id)) {
          ctx.BumpIfTouched(id);
        }
      }
    } else {
      for (RecordId id : row) ctx.BumpIfTouched(id);
    }
  }
}

}  // namespace

InvertedIndex::InvertedIndex(const Dataset& dataset, ThreadPool* pool)
    : num_records_(dataset.size()) {
  store_ = PostingStore::Build(
      dataset.universe_size(), dataset.size(),
      [&dataset](size_t i, const auto& fn) {
        for (ElementId e : dataset.record(i)) {
          fn(e, static_cast<RecordId>(i));
        }
      },
      pool, dataset.total_elements());
}

std::vector<RecordId> InvertedIndex::ScanCount(const Record& query,
                                               size_t min_overlap,
                                               QueryContext& ctx,
                                               QueryStats* stats) const {
  std::vector<RecordId> out;
  if (min_overlap > query.size()) return out;
  CountOverlaps(query, min_overlap, ctx, stats);
  for (RecordId id : ctx.touched()) {
    if (ctx.CountOf(id) >= min_overlap) out.push_back(id);
  }
  return out;
}

void InvertedIndex::CountOverlaps(const Record& query, size_t min_overlap,
                                  QueryContext& ctx,
                                  QueryStats* stats) const {
  GBKMV_CHECK(min_overlap >= 1);
  const size_t q = query.size();
  if (min_overlap > q) {
    ctx.Begin(num_records_);
    return;
  }
  ctx.Begin(num_records_);

  // Selective queries take a prefix-filtered two-phase path: candidates are
  // generated from the q − θ + 1 shortest rows (by the pigeonhole principle
  // a record with overlap >= θ appears in at least one of ANY q − θ + 1 of
  // the query's rows), and the θ − 1 longest rows then only refine counts of
  // those candidates — by binary-search probes when the row dwarfs the
  // candidate set, which is where the big savings are. When the shortest
  // rows already carry substantial volume the candidate set is large, no
  // row can be probed, and the refinement only adds overhead — so the split
  // is attempted only when the refine volume dwarfs the generation volume.
  bool split = false;
  const size_t refine_rows = min_overlap - 1;
  std::vector<uint32_t> longest;  // query positions of the θ − 1 longest rows
  // Only high thresholds (θ >= 0.6·q) can shed enough rows for the split to
  // beat the dense scan; below that even the bookkeeping is a net loss.
  if (refine_rows * 5 >= q * 3 && refine_rows > 0 &&
      q < QueryContext::kSaturated) {
    // Cheap gate first: a dominant longest row is what makes the split pay,
    // and the pass below only touches the offsets the scan would read
    // anyway. The allocation + selection run only for gated queries.
    uint64_t total_volume = 0;
    uint64_t max_length = 0;
    for (size_t i = 0; i < q; ++i) {
      const uint64_t len = store_.Row(query[i]).size();
      total_volume += len;
      max_length = std::max(max_length, len);
    }
    if (max_length > 4 * (total_volume - max_length) / refine_rows) {
      std::vector<uint64_t> by_length(q);  // (length, position) packed
      for (size_t i = 0; i < q; ++i) {
        by_length[i] = (uint64_t{store_.Row(query[i]).size()} << 32) | i;
      }
      std::nth_element(by_length.begin(),
                       by_length.begin() + (refine_rows - 1), by_length.end(),
                       std::greater<uint64_t>());
      uint64_t refine_volume = 0;
      for (size_t k = 0; k < refine_rows; ++k) {
        refine_volume += by_length[k] >> 32;
      }
      const uint64_t generate_volume = total_volume - refine_volume;
      // All must hold: the refine rows carry the bulk of the volume (else
      // there is nothing to save), and the candidate set — bounded by the
      // generation volume — is small enough that at least the longest row
      // is plausibly probe-able (else no row can be probed and the
      // refinement pass only costs). The q bound above keeps counts below
      // the context's inline-counter saturation point, which the refine API
      // clamps at instead of spilling exactly.
      split = refine_volume > 16 * generate_volume &&
              generate_volume < num_records_ / 8 &&
              max_length > 16 * generate_volume;
      if (split) {
        longest.reserve(refine_rows);
        for (size_t k = 0; k < refine_rows; ++k) {
          longest.push_back(static_cast<uint32_t>(by_length[k]));
        }
      }
    }
  }

  if (!split) {
    // Dense path: one pass in query order (ascending element id = ascending
    // CSR address, the traversal the prefetcher likes).
    if (q < QueryContext::kSaturated) {
      DenseScan(store_, query, ctx);
    } else {
      DenseScanChecked(store_, query, ctx);
    }
  } else {
    std::sort(longest.begin(), longest.end());
    // Generation over every row not among the θ − 1 longest, in query
    // order; then refinement, which never admits new candidates (a record
    // absent from every generation row cannot reach θ) and binary-search
    // probes any row that dwarfs the candidate set — a probe costs log2(L)
    // scattered reads against ~1 streamed read per posting for a scan,
    // hence the wide margin inside RefineRows.
    GenerateScan(store_, query, longest, ctx);
    RefineRows(store_, query, longest, ctx);
  }

  if (stats != nullptr) {
    // Per-row, not per-posting: the hot loops stay untouched. On the split
    // path the refine rows were not streamed — RefineRows either scans a
    // row or binary-probes it per candidate, whichever is cheaper — so each
    // refine row is charged min(row length, candidate count) instead of its
    // full length (a close upper bound on entries actually read; charging
    // full rows would overstate by the exact factor the split saves).
    if (!split) {
      for (ElementId e : query) {
        stats->postings_scanned += store_.Row(e).size();
      }
    } else {
      const uint64_t candidates = ctx.touched().size();
      size_t next = 0;
      for (size_t i = 0; i < q; ++i) {
        const uint64_t len = store_.Row(query[i]).size();
        if (next < longest.size() && longest[next] == i) {
          ++next;
          stats->postings_scanned += std::min(len, candidates);
        } else {
          stats->postings_scanned += len;
        }
      }
    }
    stats->candidates_generated += ctx.touched().size();
  }
}

}  // namespace gbkmv
