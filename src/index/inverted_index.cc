#include "index/inverted_index.h"

#include "common/status.h"

namespace gbkmv {

InvertedIndex::InvertedIndex(const Dataset& dataset) {
  postings_.resize(dataset.universe_size());
  for (size_t i = 0; i < dataset.size(); ++i) {
    for (ElementId e : dataset.record(i)) {
      postings_[e].push_back(static_cast<RecordId>(i));
    }
  }
  total_postings_ = dataset.total_elements();
  counter_.assign(dataset.size(), 0);
}

const std::vector<RecordId>& InvertedIndex::Postings(ElementId element) const {
  static const std::vector<RecordId>* kEmpty = new std::vector<RecordId>();
  if (element >= postings_.size()) return *kEmpty;
  return postings_[element];
}

std::vector<RecordId> InvertedIndex::ScanCount(const Record& query,
                                               size_t min_overlap) const {
  GBKMV_CHECK(min_overlap >= 1);
  std::vector<RecordId> touched;
  for (ElementId e : query) {
    for (RecordId id : Postings(e)) {
      if (counter_[id] == 0) touched.push_back(id);
      ++counter_[id];
    }
  }
  std::vector<RecordId> out;
  for (RecordId id : touched) {
    if (counter_[id] >= min_overlap) out.push_back(id);
    counter_[id] = 0;  // Reset for the next call.
  }
  return out;
}

}  // namespace gbkmv
