#include "index/inverted_index.h"

#include <algorithm>

#include "common/status.h"
#include "common/thread_pool.h"

namespace gbkmv {

InvertedIndex::InvertedIndex(const Dataset& dataset, ThreadPool* pool) {
  const size_t m = dataset.size();
  const size_t universe = dataset.universe_size();
  postings_.resize(universe);
  total_postings_ = dataset.total_elements();
  counter_.assign(m, 0);

  // Two-pass sharded build. Each shard covers a contiguous ascending
  // record-id range; shard-ordered scatter offsets reproduce the serial
  // ascending posting lists exactly for any thread count. The per-shard
  // count matrix costs num_chunks * universe transient words, so fall back
  // to the serial build when the universe dwarfs the data (the matrix —
  // not the postings — would dominate time and memory).
  const size_t num_chunks =
      pool == nullptr ? 1 : std::min(pool->num_threads(), std::max<size_t>(m, 1));
  if (num_chunks <= 1 ||
      num_chunks * universe > 8 * std::max<uint64_t>(1, total_postings_)) {
    for (size_t i = 0; i < m; ++i) {
      for (ElementId e : dataset.record(i)) {
        postings_[e].push_back(static_cast<RecordId>(i));
      }
    }
    return;
  }
  const size_t grain = (m + num_chunks - 1) / num_chunks;

  // Pass 1: per-shard occurrence counts per element.
  std::vector<std::vector<uint32_t>> shard_counts(
      num_chunks, std::vector<uint32_t>(universe, 0));
  pool->ParallelFor(0, m, grain,
                    [&](size_t begin, size_t end, size_t chunk) {
                      std::vector<uint32_t>& counts = shard_counts[chunk];
                      for (size_t i = begin; i < end; ++i) {
                        for (ElementId e : dataset.record(i)) ++counts[e];
                      }
                    });

  // Exclusive prefix over shards per element: shard_counts[c][e] becomes the
  // write offset of shard c into postings_[e]; the final sum sizes the list.
  pool->ParallelFor(
      0, universe, std::max<size_t>(1, universe / (8 * pool->num_threads())),
      [&](size_t begin, size_t end, size_t /*chunk*/) {
        for (size_t e = begin; e < end; ++e) {
          uint32_t total = 0;
          for (size_t c = 0; c < num_chunks; ++c) {
            const uint32_t count = shard_counts[c][e];
            shard_counts[c][e] = total;
            total += count;
          }
          postings_[e].resize(total);
        }
      });

  // Pass 2: scatter each shard's ids into its reserved slices.
  pool->ParallelFor(0, m, grain,
                    [&](size_t begin, size_t end, size_t chunk) {
                      std::vector<uint32_t>& offsets = shard_counts[chunk];
                      for (size_t i = begin; i < end; ++i) {
                        for (ElementId e : dataset.record(i)) {
                          postings_[e][offsets[e]++] =
                              static_cast<RecordId>(i);
                        }
                      }
                    });
}

const std::vector<RecordId>& InvertedIndex::Postings(ElementId element) const {
  static const std::vector<RecordId>* kEmpty = new std::vector<RecordId>();
  if (element >= postings_.size()) return *kEmpty;
  return postings_[element];
}

std::vector<RecordId> InvertedIndex::ScanCount(const Record& query,
                                               size_t min_overlap) const {
  return ScanCount(query, min_overlap, counter_);
}

std::vector<RecordId> InvertedIndex::ScanCount(
    const Record& query, size_t min_overlap,
    std::vector<uint32_t>& counter) const {
  GBKMV_CHECK(min_overlap >= 1);
  std::vector<RecordId> touched;
  for (ElementId e : query) {
    for (RecordId id : Postings(e)) {
      if (counter[id] == 0) touched.push_back(id);
      ++counter[id];
    }
  }
  std::vector<RecordId> out;
  for (RecordId id : touched) {
    if (counter[id] >= min_overlap) out.push_back(id);
    counter[id] = 0;  // Reset for the next call.
  }
  return out;
}

}  // namespace gbkmv
