#include "index/inverted_index.h"

#include <algorithm>
#include <numeric>

#include "common/status.h"
#include "common/thread_pool.h"
#include "io/serializer.h"
#include "storage/simd/simd.h"

namespace gbkmv {

namespace {

// The scan loops live in standalone noinline functions so their code
// generation is isolated from the per-query bookkeeping around them — the
// per-posting loops are sensitive enough that inlining them into a larger
// frame measurably changes their speed. Each loop prefetches the next row's
// CSR payload while the current row streams, so the row-boundary stall is
// paid once per query instead of once per row.
//
// Caller guarantees query.size() < QueryContext::kSaturated (counts cannot
// saturate), so the guard-free bump applies.
__attribute__((noinline)) void SparseScan(const PostingStore& store,
                                          const Record& query,
                                          QueryContext& ctx) {
  const size_t q = query.size();
  for (size_t i = 0; i < q; ++i) {
    if (i + 1 < q) __builtin_prefetch(store.Row(query[i + 1]).data());
    ctx.BumpRowUnchecked(store.Row(query[i]));
  }
}

// Fallback for degenerate queries with kSaturated or more elements: counts
// can exceed the inline 16-bit field, so every bump takes the exact
// (overflow-spilling) path.
__attribute__((noinline)) void SparseScanChecked(const PostingStore& store,
                                                 const Record& query,
                                                 QueryContext& ctx) {
  for (ElementId e : query) ctx.BumpRow(store.Row(e));
}

// Dense-mode bulk accumulate: guard-free ++counts[id] per posting through
// the kernel table (storage/simd/), no touched-list bookkeeping at all.
__attribute__((noinline)) void DenseAccumulate(const PostingStore& store,
                                               const Record& query,
                                               QueryContext& ctx) {
  uint16_t* const counts = ctx.dense_counts();
  const auto accumulate = Kernels().accumulate_u16;
  const size_t q = query.size();
  for (size_t i = 0; i < q; ++i) {
    if (i + 1 < q) __builtin_prefetch(store.Row(query[i + 1]).data());
    const std::span<const RecordId> row = store.Row(query[i]);
    accumulate(counts, row.data(), row.size());
  }
}

// Compressed-backend twins: each row is decoded into the context's scratch
// by the SIMD unpack kernels, then counted exactly like a flat row — same
// values in the same order, so results match the flat backend bit for bit.
__attribute__((noinline)) void DenseAccumulateCompressed(
    const CompressedPostingStore& store, const Record& query, QueryContext& ctx,
    uint64_t max_row_length) {
  uint16_t* const counts = ctx.dense_counts();
  uint32_t* const scratch = ctx.RowScratch(CompressedPostingStore::
      DecodeCapacity(static_cast<uint32_t>(max_row_length)));
  const auto& kernels = Kernels();
  for (ElementId e : query) {
    const uint32_t n = store.DecodeRow(e, scratch);
    kernels.accumulate_u16(counts, scratch, n);
  }
}

__attribute__((noinline)) void SparseScanCompressed(
    const CompressedPostingStore& store, const Record& query, QueryContext& ctx,
    uint64_t max_row_length, bool checked) {
  uint32_t* const scratch = ctx.RowScratch(CompressedPostingStore::
      DecodeCapacity(static_cast<uint32_t>(max_row_length)));
  for (ElementId e : query) {
    const uint32_t n = store.DecodeRow(e, scratch);
    const std::span<const uint32_t> row(scratch, n);
    if (checked) {
      ctx.BumpRow(row);
    } else {
      ctx.BumpRowUnchecked(row);
    }
  }
}

__attribute__((noinline)) void GenerateScan(const PostingStore& store,
                                            const Record& query,
                                            const std::vector<uint32_t>& skip,
                                            QueryContext& ctx) {
  size_t next = 0;
  for (size_t i = 0; i < query.size(); ++i) {
    if (next < skip.size() && skip[next] == i) {
      ++next;
      continue;
    }
    ctx.BumpRowUnchecked(store.Row(query[i]));
  }
}

__attribute__((noinline)) void RefineRows(const PostingStore& store,
                                          const Record& query,
                                          const std::vector<uint32_t>& rows,
                                          QueryContext& ctx) {
  const std::span<const uint32_t> candidates = ctx.touched();
  for (uint32_t i : rows) {
    const std::span<const RecordId> row = store.Row(query[i]);
    if (row.size() > 128 * candidates.size()) {
      // Binary probes over a row that dwarfs the candidate set. Each probe
      // is latency-bound on scattered loads, so prefetch both possible next
      // midpoints while the current one resolves (prefetch never faults, so
      // the slightly-past-the-end addresses at small `len` are harmless).
      const RecordId* const base = row.data();
      for (RecordId id : candidates) {
        size_t lo = 0;
        size_t len = row.size();
        while (len > 0) {
          const size_t half = len / 2;
          __builtin_prefetch(&base[lo + half / 2]);
          __builtin_prefetch(&base[lo + half + 1 + (len - half - 1) / 2]);
          if (base[lo + half] < id) {
            lo += half + 1;
            len -= half + 1;
          } else {
            len = half;
          }
        }
        if (lo < row.size() && base[lo] == id) ctx.BumpIfTouched(id);
      }
    } else {
      ctx.BumpRowIfTouched(row);
    }
  }
}

}  // namespace

InvertedIndex::InvertedIndex(const Dataset& dataset, ThreadPool* pool,
                             PostingStoreKind kind)
    : kind_(kind), num_records_(dataset.size()) {
  store_ = PostingStore::Build(
      dataset.universe_size(), dataset.size(),
      [&dataset](size_t i, const auto& fn) {
        for (ElementId e : dataset.record(i)) {
          fn(e, static_cast<RecordId>(i));
        }
      },
      pool, dataset.total_elements());
  if (kind_ == PostingStoreKind::kCompressed) {
    compressed_ = CompressedPostingStore::BuildFrom(store_);
    store_ = PostingStore();  // drop the flat payload; only the arena stays
  }
}

Result<InvertedIndex> InvertedIndex::FromCompressed(
    const Dataset& dataset, CompressedPostingStore store) {
  if (store.num_keys() != dataset.universe_size()) {
    return Status::Corruption(
        "compressed postings: key space does not match the dataset universe");
  }
  if (store.size() != dataset.total_elements()) {
    return Status::Corruption(
        "compressed postings: posting count does not match total elements");
  }
  InvertedIndex index;
  index.kind_ = PostingStoreKind::kCompressed;
  index.num_records_ = dataset.size();
  index.compressed_ = std::move(store);
  return index;
}

void InvertedIndex::SaveToAligned(io::Writer* out) const {
  out->PutU32(static_cast<uint32_t>(kind_));
  out->PutU64(num_records_);
  if (kind_ == PostingStoreKind::kFlat) {
    out->PutU64(store_.num_keys());
    store_.SaveToAligned(out);
  } else {
    out->PutU64(compressed_.num_keys());
    compressed_.SaveToAligned(out);
  }
}

Result<InvertedIndex> InvertedIndex::LoadFromAligned(io::Reader* in,
                                                     bool borrow) {
  uint32_t kind = 0;
  uint64_t num_records = 0;
  uint64_t num_keys = 0;
  GBKMV_RETURN_IF_ERROR(in->GetU32(&kind));
  GBKMV_RETURN_IF_ERROR(in->GetU64(&num_records));
  GBKMV_RETURN_IF_ERROR(in->GetU64(&num_keys));
  InvertedIndex index;
  index.num_records_ = static_cast<size_t>(num_records);
  if (kind == static_cast<uint32_t>(PostingStoreKind::kFlat)) {
    index.kind_ = PostingStoreKind::kFlat;
    GBKMV_RETURN_IF_ERROR(index.store_.LoadFromAligned(
        in, static_cast<size_t>(num_keys), num_records, borrow));
    return index;
  }
  if (kind != static_cast<uint32_t>(PostingStoreKind::kCompressed)) {
    return Status::Corruption("inverted index: unknown posting-store kind");
  }
  index.kind_ = PostingStoreKind::kCompressed;
  GBKMV_RETURN_IF_ERROR(index.compressed_.LoadFromAligned(in, borrow));
  if (index.compressed_.num_keys() != num_keys) {
    return Status::Corruption(
        "inverted index: compressed key space disagrees with header");
  }
  // The structural walk proved the arena decodable; decode every row once
  // to bound the ids the count kernels will later index with (the flat
  // branch gets the same bound from CsrStore's value check).
  uint32_t max_length = 0;
  for (size_t key = 0; key < num_keys; ++key) {
    max_length =
        std::max(max_length, index.compressed_.RowLength(key));
  }
  std::vector<uint32_t> scratch(
      CompressedPostingStore::DecodeCapacity(max_length));
  for (size_t key = 0; key < num_keys; ++key) {
    const uint32_t n = index.compressed_.DecodeRow(key, scratch.data());
    for (uint32_t k = 0; k < n; ++k) {
      if (scratch[k] >= num_records ||
          (k > 0 && scratch[k] <= scratch[k - 1])) {
        return Status::Corruption(
            "inverted index: posting id out of range or not ascending");
      }
    }
  }
  return index;
}

std::vector<RecordId> InvertedIndex::ScanCount(const Record& query,
                                               size_t min_overlap,
                                               QueryContext& ctx,
                                               QueryStats* stats) const {
  std::vector<RecordId> out;
  // min_overlap == 0 means "any overlap at all": clamp to 1 here (and in
  // CountOverlaps) instead of aborting — a record sharing zero elements is
  // never a meaningful ScanCount hit, and every caller that wants "return
  // everything" already special-cases θ = 0 above this layer.
  if (min_overlap == 0) min_overlap = 1;
  if (min_overlap > query.size()) return out;
  CountOverlaps(query, min_overlap, ctx, stats);
  for (RecordId id : ctx.touched()) {
    if (ctx.CountOf(id) >= min_overlap) out.push_back(id);
  }
  return out;
}

void InvertedIndex::CountOverlaps(const Record& query, size_t min_overlap,
                                  QueryContext& ctx,
                                  QueryStats* stats) const {
  if (min_overlap == 0) min_overlap = 1;  // same clamp as ScanCount
  const size_t q = query.size();
  if (min_overlap > q) {
    ctx.Begin(num_records_);
    return;
  }

  // One cheap pass over the row lengths (offset reads only) feeds every
  // strategy gate below.
  uint64_t total_volume = 0;
  uint64_t max_length = 0;
  for (size_t i = 0; i < q; ++i) {
    const uint64_t len = RowLength(query[i]);
    total_volume += len;
    max_length = std::max(max_length, len);
  }

  // Selective queries take a prefix-filtered two-phase path: candidates are
  // generated from the q − θ + 1 shortest rows (by the pigeonhole principle
  // a record with overlap >= θ appears in at least one of ANY q − θ + 1 of
  // the query's rows), and the θ − 1 longest rows then only refine counts of
  // those candidates — by binary-search probes when the row dwarfs the
  // candidate set, which is where the big savings are. When the shortest
  // rows already carry substantial volume the candidate set is large, no
  // row can be probed, and the refinement only adds overhead — so the split
  // is attempted only when the refine volume dwarfs the generation volume.
  // Flat backend only: probing needs random access into rows, which the
  // compressed arena cannot serve without decoding them whole.
  bool split = false;
  const size_t refine_rows = min_overlap - 1;
  std::vector<uint32_t> longest;  // query positions of the θ − 1 longest rows
  // Only high thresholds (θ >= 0.6·q) can shed enough rows for the split to
  // beat a straight scan; below that even the bookkeeping is a net loss.
  if (kind_ == PostingStoreKind::kFlat && refine_rows * 5 >= q * 3 &&
      refine_rows > 0 && q < QueryContext::kSaturated) {
    // Cheap gate first: a dominant longest row is what makes the split pay.
    // The allocation + selection below run only for gated queries.
    if (max_length > 4 * (total_volume - max_length) / refine_rows) {
      std::vector<uint64_t> by_length(q);  // (length, position) packed
      for (size_t i = 0; i < q; ++i) {
        by_length[i] = (uint64_t{store_.Row(query[i]).size()} << 32) | i;
      }
      std::nth_element(by_length.begin(),
                       by_length.begin() + (refine_rows - 1), by_length.end(),
                       std::greater<uint64_t>());
      uint64_t refine_volume = 0;
      for (size_t k = 0; k < refine_rows; ++k) {
        refine_volume += by_length[k] >> 32;
      }
      const uint64_t generate_volume = total_volume - refine_volume;
      // All must hold: the refine rows carry the bulk of the volume (else
      // there is nothing to save), and the candidate set — bounded by the
      // generation volume — is small enough that at least the longest row
      // is plausibly probe-able (else no row can be probed and the
      // refinement pass only costs). The q bound above keeps counts below
      // the context's inline-counter saturation point, which the refine API
      // clamps at instead of spilling exactly.
      split = refine_volume > 16 * generate_volume &&
              generate_volume < num_records_ / 8 &&
              max_length > 16 * generate_volume;
      if (split) {
        longest.reserve(refine_rows);
        for (size_t k = 0; k < refine_rows; ++k) {
          longest.push_back(static_cast<uint32_t>(by_length[k]));
        }
      }
    }
  }

  // Dense gate: once the query streams at least one posting per record on
  // average, a memset + guard-free counters + SIMD threshold emission beat
  // the epoch bookkeeping (whose first-touch branch mispredicts on nearly
  // every record at this density). Depends only on query and index, so the
  // strategy — and therefore every result byte — is identical for any
  // thread count and dispatch level.
  const bool dense =
      !split && total_volume >= num_records_ && q <= 0xffff;

  if (dense) {
    ctx.BeginDense(num_records_);
    if (kind_ == PostingStoreKind::kFlat) {
      DenseAccumulate(store_, query, ctx);
    } else {
      DenseAccumulateCompressed(compressed_, query, ctx, max_length);
    }
    ctx.FinalizeDense(static_cast<uint16_t>(min_overlap));
  } else {
    ctx.Begin(num_records_);
    if (!split) {
      // One pass in query order (ascending element id = ascending CSR
      // address, the traversal the prefetcher likes).
      if (kind_ == PostingStoreKind::kFlat) {
        if (q < QueryContext::kSaturated) {
          SparseScan(store_, query, ctx);
        } else {
          SparseScanChecked(store_, query, ctx);
        }
      } else {
        SparseScanCompressed(compressed_, query, ctx, max_length,
                             /*checked=*/q >= QueryContext::kSaturated);
      }
    } else {
      std::sort(longest.begin(), longest.end());
      // Generation over every row not among the θ − 1 longest, in query
      // order; then refinement, which never admits new candidates (a record
      // absent from every generation row cannot reach θ) and binary-search
      // probes any row that dwarfs the candidate set — a probe costs log2(L)
      // scattered reads against ~1 streamed read per posting for a scan,
      // hence the wide margin inside RefineRows.
      GenerateScan(store_, query, longest, ctx);
      RefineRows(store_, query, longest, ctx);
    }
  }

  if (stats != nullptr) {
    // Per-row, not per-posting: the hot loops stay untouched. On the split
    // path the refine rows were not streamed — RefineRows either scans a
    // row or binary-probes it per candidate, whichever is cheaper — so each
    // refine row is charged min(row length, candidate count) instead of its
    // full length (a close upper bound on entries actually read; charging
    // full rows would overstate by the exact factor the split saves).
    if (!split) {
      stats->postings_scanned += total_volume;
    } else {
      const uint64_t candidates = ctx.touched().size();
      size_t next = 0;
      for (size_t i = 0; i < q; ++i) {
        const uint64_t len = store_.Row(query[i]).size();
        if (next < longest.size() && longest[next] == i) {
          ++next;
          stats->postings_scanned += std::min(len, candidates);
        } else {
          stats->postings_scanned += len;
        }
      }
    }
    // Records with any overlap — what sparse touched() holds; the dense
    // path recovers the same number with one SIMD pass so the stat is
    // strategy-independent (sharded sums rely on that).
    stats->candidates_generated +=
        dense ? ctx.DenseNonZero() : ctx.touched().size();
  }
}

}  // namespace gbkmv
