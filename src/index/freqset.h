// FrequentSet-style exact containment search.
//
// Stand-in for the inverted-list exact method of Agrawal et al. (SIGMOD
// 2010) used as the second exact comparator in §V-F: a ScanCount over the
// query's posting lists with the overlap threshold θ = ⌈t*·|Q|⌉, with a
// cheap frequency-ordered early-termination heuristic (rare tokens first, so
// the counter array stays sparse for selective queries). Unlike PPjoin* it
// has no prefix/positional filtering — its per-query cost grows with the
// total posting volume of the query, which is exactly the behaviour
// Fig. 19(b) contrasts against GB-KMV. Hit scores are exact containment
// |Q∩X|/|Q|, read off the ScanCount counters at no extra scan cost.

#ifndef GBKMV_INDEX_FREQSET_H_
#define GBKMV_INDEX_FREQSET_H_

#include <memory>
#include <string>
#include <utility>

#include "common/status.h"
#include "data/dataset.h"
#include "index/inverted_index.h"
#include "index/searcher.h"

namespace gbkmv {

namespace io {
class SnapshotReader;
}  // namespace io

class FreqSetSearcher : public ContainmentSearcher {
 public:
  // A non-null pool shards the inverted-index build (byte-identical result).
  // `store` selects the posting backend: kFlat (fastest scans, default) or
  // kCompressed (delta + bit-packed blocks, a fraction of the footprint);
  // results are bit-identical either way.
  explicit FreqSetSearcher(const Dataset& dataset, ThreadPool* pool = nullptr,
                           PostingStoreKind store = PostingStoreKind::kFlat);

  // Safe for concurrent callers with distinct QueryContext arenas.
  QueryResponse SearchQ(const QueryRequest& request,
                        QueryContext& ctx) const override;
  std::string name() const override { return "FreqSet"; }
  uint64_t SpaceUnits() const override { return index_.SpaceUnits(); }
  // Paper measure: one unit per posting entry (= total elements).
  uint64_t BudgetSpaceUnits() const override {
    return index_.TotalPostings();
  }
  bool exact() const override { return true; }

  // Snapshot round-trip (docs/snapshot_format.md "freqset-index"). v3
  // stores the posting payload in the aligned-array encoding for either
  // backend, so no load rebuilds anything; v1/v2 snapshots rebuild the flat
  // backend from the dataset on read. LoadMapped serves the postings
  // straight out of a validated v3 view (no dataset, no copies) — the
  // caller keeps the backing mapping alive for the searcher's lifetime; a
  // mapped searcher cannot Save (FailedPrecondition) because the dataset
  // did not travel with it.
  static constexpr char kSnapshotKind[] = "freqset-index";
  Status SaveSnapshot(const std::string& path) const override {
    return Save(path);
  }
  Status Save(const std::string& path) const;
  static Result<std::unique_ptr<FreqSetSearcher>> LoadFrom(
      const io::SnapshotReader& snapshot, const Dataset& dataset);
  static Result<std::unique_ptr<FreqSetSearcher>> Load(const std::string& path,
                                                       const Dataset& dataset);
  static Result<std::unique_ptr<FreqSetSearcher>> LoadMapped(
      const io::SnapshotReader& snapshot);

 private:
  FreqSetSearcher(const Dataset* dataset, size_t num_records,
                  InvertedIndex index)
      : dataset_(dataset),
        num_records_(num_records),
        index_(std::move(index)) {}

  const Dataset* dataset_;  // null for mapped (dataset-free) loads
  size_t num_records_;
  InvertedIndex index_;
};

}  // namespace gbkmv

#endif  // GBKMV_INDEX_FREQSET_H_
