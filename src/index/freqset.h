// FrequentSet-style exact containment search.
//
// Stand-in for the inverted-list exact method of Agrawal et al. (SIGMOD
// 2010) used as the second exact comparator in §V-F: a ScanCount over the
// query's posting lists with the overlap threshold θ = ⌈t*·|Q|⌉, with a
// cheap frequency-ordered early-termination heuristic (rare tokens first, so
// the counter array stays sparse for selective queries). Unlike PPjoin* it
// has no prefix/positional filtering — its per-query cost grows with the
// total posting volume of the query, which is exactly the behaviour
// Fig. 19(b) contrasts against GB-KMV. Hit scores are exact containment
// |Q∩X|/|Q|, read off the ScanCount counters at no extra scan cost.

#ifndef GBKMV_INDEX_FREQSET_H_
#define GBKMV_INDEX_FREQSET_H_

#include "data/dataset.h"
#include "index/inverted_index.h"
#include "index/searcher.h"

namespace gbkmv {

class FreqSetSearcher : public ContainmentSearcher {
 public:
  // A non-null pool shards the inverted-index build (byte-identical result).
  explicit FreqSetSearcher(const Dataset& dataset, ThreadPool* pool = nullptr);

  // Safe for concurrent callers with distinct QueryContext arenas.
  QueryResponse SearchQ(const QueryRequest& request,
                        QueryContext& ctx) const override;
  std::string name() const override { return "FreqSet"; }
  uint64_t SpaceUnits() const override { return index_.SpaceUnits(); }
  // Paper measure: one unit per posting entry (= total elements).
  uint64_t BudgetSpaceUnits() const override {
    return index_.TotalPostings();
  }
  bool exact() const override { return true; }

 private:
  const Dataset& dataset_;
  InvertedIndex index_;
};

}  // namespace gbkmv

#endif  // GBKMV_INDEX_FREQSET_H_
