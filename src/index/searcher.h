// Common interface of every containment-similarity search method
// (Definition 3): given a query Q and threshold t*, return the ids of all
// records X with C(Q,X) = |Q∩X|/|Q| >= t* (exactly, or approximately for the
// sketch-based methods).

#ifndef GBKMV_INDEX_SEARCHER_H_
#define GBKMV_INDEX_SEARCHER_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "data/record.h"

namespace gbkmv {

using RecordId = uint32_t;

class ContainmentSearcher {
 public:
  virtual ~ContainmentSearcher() = default;

  // Record ids whose containment similarity w.r.t. `query` is (estimated to
  // be) >= `threshold`. Order is unspecified; no duplicates.
  virtual std::vector<RecordId> Search(const Record& query,
                                       double threshold) const = 0;

  // Batch engine: results[i] is exactly what Search(queries[i], threshold)
  // returns, for any thread count (results are computed in per-thread
  // buffers and merged in input order). num_threads == 0 means
  // DefaultThreads(). The base implementation is sequential — it is what
  // every override must stay byte-identical to; subclasses whose Search is
  // safe for concurrent callers (all current methods: query scratch lives in
  // the per-thread QueryContext arena) parallelise via ParallelBatchQuery.
  virtual std::vector<std::vector<RecordId>> BatchQuery(
      std::span<const Record> queries, double threshold,
      size_t num_threads) const;

  // Human-readable method name ("GB-KMV", "LSH-E", ...).
  virtual std::string name() const = 0;

  // Actual resident index storage in 32-bit units: every array the query
  // path keeps live (posting values, CSR offsets, key/probe tables, sketch
  // payloads). Per-method formulas in docs/snapshot_format.md.
  virtual uint64_t SpaceUnits() const = 0;

  // The paper's element-unit space measure (§V "SpaceUsed"): the sketch
  // budget for sketch methods, m·k for the signature methods, posting
  // entries for the exact ones. This is what the figure harnesses plot on
  // their space axes; SpaceUnits() >= BudgetSpaceUnits() always, and the gap
  // is the accounting the paper leaves out (offsets, probe tables).
  virtual uint64_t BudgetSpaceUnits() const { return SpaceUnits(); }

  // True for methods whose result set is exact (no sketch error).
  virtual bool exact() const { return false; }

  // Persists the index as a versioned binary snapshot (src/io) that the
  // SearcherRegistry can reload. Methods without snapshot support return
  // FailedPrecondition; cheap exact methods rebuild faster than they load.
  virtual Status SaveSnapshot(const std::string& path) const {
    (void)path;
    return Status::FailedPrecondition(name() +
                                      " does not support snapshots");
  }
};

// Shared parallel BatchQuery implementation for searchers whose Search is
// safe for concurrent callers (query scratch comes from the calling
// thread's QueryContext arena, never from the searcher): chunks `queries`
// across the workers and merges the per-chunk buffers in input order.
std::vector<std::vector<RecordId>> ParallelBatchQuery(
    const ContainmentSearcher& searcher, std::span<const Record> queries,
    double threshold, size_t num_threads);

}  // namespace gbkmv

#endif  // GBKMV_INDEX_SEARCHER_H_
