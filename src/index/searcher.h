// Common interface of every containment-similarity search method
// (Definition 3): given a query Q and threshold t*, return the ids of all
// records X with C(Q,X) = |Q∩X|/|Q| >= t* (exactly, or approximately for the
// sketch-based methods).

#ifndef GBKMV_INDEX_SEARCHER_H_
#define GBKMV_INDEX_SEARCHER_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "data/record.h"

namespace gbkmv {

using RecordId = uint32_t;

class ContainmentSearcher {
 public:
  virtual ~ContainmentSearcher() = default;

  // Record ids whose containment similarity w.r.t. `query` is (estimated to
  // be) >= `threshold`. Order is unspecified; no duplicates.
  virtual std::vector<RecordId> Search(const Record& query,
                                       double threshold) const = 0;

  // Batch engine: results[i] is exactly what Search(queries[i], threshold)
  // returns, for any thread count (results are computed in per-thread
  // buffers and merged in input order). num_threads == 0 means
  // DefaultThreads(). The base implementation is sequential — it is what
  // every override must stay byte-identical to; subclasses whose Search is
  // safe for concurrent callers parallelise via ParallelBatchQuery, and
  // scratch-carrying searchers override with per-worker scratch.
  virtual std::vector<std::vector<RecordId>> BatchQuery(
      std::span<const Record> queries, double threshold,
      size_t num_threads) const;

  // Human-readable method name ("GB-KMV", "LSH-E", ...).
  virtual std::string name() const = 0;

  // Index size in element units (32-bit words), the paper's space measure.
  // Exact methods report the size of their index structures.
  virtual uint64_t SpaceUnits() const = 0;

  // True for methods whose result set is exact (no sketch error).
  virtual bool exact() const { return false; }

  // Persists the index as a versioned binary snapshot (src/io) that the
  // SearcherRegistry can reload. Methods without snapshot support return
  // FailedPrecondition; cheap exact methods rebuild faster than they load.
  virtual Status SaveSnapshot(const std::string& path) const {
    (void)path;
    return Status::FailedPrecondition(name() +
                                      " does not support snapshots");
  }
};

// Shared parallel BatchQuery implementation for searchers whose Search is
// safe for concurrent callers (no mutable scratch): chunks `queries` across
// the workers and merges the per-chunk buffers in input order.
std::vector<std::vector<RecordId>> ParallelBatchQuery(
    const ContainmentSearcher& searcher, std::span<const Record> queries,
    double threshold, size_t num_threads);

// Variant for searchers whose search body needs per-query scratch:
// make_scratch() runs once per chunk and search(query, scratch) per query,
// so chunks execute concurrently with isolated scratch. One chunk per
// worker — scratch is O(dataset size) to allocate/zero, so finer grains
// would pay more in scratch setup than they win in load balance.
template <typename MakeScratch, typename SearchFn>
std::vector<std::vector<RecordId>> ParallelBatchQueryWithScratch(
    std::span<const Record> queries, size_t num_threads,
    MakeScratch&& make_scratch, SearchFn&& search) {
  if (num_threads == 0) num_threads = DefaultThreads();
  std::vector<std::vector<RecordId>> results(queries.size());
  if (num_threads == 1 || queries.size() <= 1) {
    auto scratch = make_scratch();
    for (size_t i = 0; i < queries.size(); ++i) {
      results[i] = search(queries[i], scratch);
    }
    return results;
  }
  ThreadPool pool(num_threads);
  const size_t grain =
      (queries.size() + pool.num_threads() - 1) / pool.num_threads();
  pool.ParallelFor(0, queries.size(), grain,
                   [&](size_t begin, size_t end, size_t /*chunk*/) {
                     auto scratch = make_scratch();
                     for (size_t i = begin; i < end; ++i) {
                       results[i] = search(queries[i], scratch);
                     }
                   });
  return results;
}

}  // namespace gbkmv

#endif  // GBKMV_INDEX_SEARCHER_H_
