// Common interface of every containment-similarity search method
// (Definition 3): given a query Q and threshold t*, return the ids of all
// records X with C(Q,X) = |Q∩X|/|Q| >= t* (exactly, or approximately for the
// sketch-based methods).

#ifndef GBKMV_INDEX_SEARCHER_H_
#define GBKMV_INDEX_SEARCHER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/record.h"

namespace gbkmv {

using RecordId = uint32_t;

class ContainmentSearcher {
 public:
  virtual ~ContainmentSearcher() = default;

  // Record ids whose containment similarity w.r.t. `query` is (estimated to
  // be) >= `threshold`. Order is unspecified; no duplicates.
  virtual std::vector<RecordId> Search(const Record& query,
                                       double threshold) const = 0;

  // Human-readable method name ("GB-KMV", "LSH-E", ...).
  virtual std::string name() const = 0;

  // Index size in element units (32-bit words), the paper's space measure.
  // Exact methods report the size of their index structures.
  virtual uint64_t SpaceUnits() const = 0;

  // True for methods whose result set is exact (no sketch error).
  virtual bool exact() const { return false; }

  // Persists the index as a versioned binary snapshot (src/io) that the
  // SearcherRegistry can reload. Methods without snapshot support return
  // FailedPrecondition; cheap exact methods rebuild faster than they load.
  virtual Status SaveSnapshot(const std::string& path) const {
    (void)path;
    return Status::FailedPrecondition(name() +
                                      " does not support snapshots");
  }
};

}  // namespace gbkmv

#endif  // GBKMV_INDEX_SEARCHER_H_
