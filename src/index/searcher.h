// Common interface of every containment-similarity search method
// (Definition 3): given a query Q and threshold t*, return the records X
// with C(Q,X) = |Q∩X|/|Q| >= t* (exactly, or approximately for the
// sketch-based methods), each with the containment score the method
// computed for it and counters describing what the index did.

#ifndef GBKMV_INDEX_SEARCHER_H_
#define GBKMV_INDEX_SEARCHER_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "data/record.h"
#include "index/query.h"
#include "storage/query_context.h"

namespace gbkmv {

class ContainmentSearcher {
 public:
  virtual ~ContainmentSearcher() = default;

  // The primary query path (query API v2, docs/query_api.md): every method
  // implements this natively, surfacing the score it already computes
  // internally. Scratch comes from `ctx` (pass ThreadLocalQueryContext()
  // unless you manage arenas yourself), so concurrent callers with distinct
  // contexts are safe on every method. Hit ordering: best-first (score
  // desc, id asc) with top_k, ascending id for unlimited scored queries,
  // and the method's natural deterministic order on the boolean path
  // (top_k == 0, want_scores == false) — see QueryResponse.
  virtual QueryResponse SearchQ(const QueryRequest& request,
                                QueryContext& ctx) const = 0;

  // Legacy convenience wrapper: ids of all records whose containment
  // similarity w.r.t. `query` is (estimated to be) >= `threshold`. Order is
  // unspecified (deterministic per method); no duplicates. Thin shim over
  // SearchQ's boolean path.
  std::vector<RecordId> Search(const Record& query, double threshold) const;

  // Batch engine over request spans: results[i] is exactly what
  // SearchQ(requests[i], ctx) returns — scores and stats included — for any
  // thread count (per-thread QueryContext arenas, results merged in input
  // order). num_threads == 0 means DefaultThreads().
  std::vector<QueryResponse> BatchSearchQ(
      std::span<const QueryRequest> requests, size_t num_threads) const;

  // Legacy batch wrapper: results[i] is what Search(queries[i], threshold)
  // returns, for any thread count.
  std::vector<std::vector<RecordId>> BatchQuery(std::span<const Record> queries,
                                                double threshold,
                                                size_t num_threads) const;

  // Human-readable method name ("GB-KMV", "LSH-E", ...).
  virtual std::string name() const = 0;

  // Actual resident index storage in 32-bit units: every array the query
  // path keeps live (posting values, CSR offsets, key/probe tables, sketch
  // payloads). Per-method formulas in docs/snapshot_format.md.
  virtual uint64_t SpaceUnits() const = 0;

  // The paper's element-unit space measure (§V "SpaceUsed"): the sketch
  // budget for sketch methods, m·k for the signature methods, posting
  // entries for the exact ones. This is what the figure harnesses plot on
  // their space axes; SpaceUnits() >= BudgetSpaceUnits() always, and the gap
  // is the accounting the paper leaves out (offsets, probe tables).
  virtual uint64_t BudgetSpaceUnits() const { return SpaceUnits(); }

  // True for methods whose result set is exact (no sketch error).
  virtual bool exact() const { return false; }

  // Persists the index as a versioned binary snapshot (src/io) that the
  // SearcherRegistry can reload. Methods without snapshot support return
  // FailedPrecondition; cheap exact methods rebuild faster than they load.
  virtual Status SaveSnapshot(const std::string& path) const {
    (void)path;
    return Status::FailedPrecondition(name() +
                                      " does not support snapshots");
  }
};

// Shared parallel batch implementation (used by BatchSearchQ): chunks
// `requests` across the workers, each running SearchQ against its own
// thread's QueryContext arena, and merges the per-chunk buffers in input
// order — byte-identical to a sequential run for any thread count.
std::vector<QueryResponse> ParallelBatchQuery(
    const ContainmentSearcher& searcher,
    std::span<const QueryRequest> requests, size_t num_threads);

}  // namespace gbkmv

#endif  // GBKMV_INDEX_SEARCHER_H_
