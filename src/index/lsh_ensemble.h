// LSH Ensemble (Zhu et al., VLDB 2016) — the paper's state-of-the-art
// baseline (§III-A), reimplemented in C++ from the two papers.
//
// Build:
//   * sort records by size and split into `num_partitions` equal-depth
//     partitions (optimal under the power-law/uniform assumptions of [44]);
//   * each partition keeps its size upper bound u and a MinHash LSH banding
//     index over the partition's signatures (one shared signature per
//     record, `num_hashes` hash functions).
// Query (threshold t*):
//   * per partition, transform t* to a Jaccard threshold with the upper
//     bound u:  s* = t* / (u/q + 1 − t*)   (Eq. 13);
//   * choose (b, r) minimising expected FP+FN at s* and probe the banding
//     index;
//   * the union of partition candidates is the answer (candidates are the
//     result — like the original system, no verification step, which is why
//     LSH-E favours recall and loses precision; §III-B).

#ifndef GBKMV_INDEX_LSH_ENSEMBLE_H_
#define GBKMV_INDEX_LSH_ENSEMBLE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "index/minhash_lsh.h"
#include "index/searcher.h"

namespace gbkmv {

namespace io {
class SnapshotReader;
}  // namespace io

struct LshEnsembleOptions {
  size_t num_hashes = 256;      // paper default
  size_t num_partitions = 32;   // paper default
  uint64_t seed = 0x15483a9bULL;

  // Build parallelism: signatures are built per-record and the per-partition
  // banding indexes per-partition, so output is byte-identical to a serial
  // build for any value. 0 = DefaultThreads(), 1 = serial.
  size_t num_threads = 0;
};

class LshEnsembleSearcher : public ContainmentSearcher {
 public:
  // Builds the ensemble. `dataset` must outlive the searcher.
  static Result<std::unique_ptr<LshEnsembleSearcher>> Create(
      const Dataset& dataset, const LshEnsembleOptions& options);

  // Candidates are the answer (no verification; §III-B). Hit scores are
  // containment re-estimated from the stored signatures through the Eq. 15
  // transformation with the candidate's partition upper bound u.
  QueryResponse SearchQ(const QueryRequest& request,
                        QueryContext& ctx) const override;
  std::string name() const override { return "LSH-E"; }
  uint64_t SpaceUnits() const override;
  // Paper measure: one unit per stored signature value (m·k).
  uint64_t BudgetSpaceUnits() const override;

  // Direct containment estimate for one record via the transformation of
  // Eq. 15 (used by tests; the search path is candidate-based).
  double EstimateContainment(const Record& query, RecordId id) const;

  size_t num_partitions() const { return partitions_.size(); }

  // Snapshot persistence (src/io; defined in io/persist_index.cc). The
  // snapshot stores the per-record MinHash signatures (the expensive O(N·k)
  // hashing work) plus the partition layout; the banding bucket tables are
  // rebuilt deterministically from the signatures on load.
  static constexpr char kSnapshotKind[] = "lsh-ensemble";
  Status Save(const std::string& path) const;
  Status SaveSnapshot(const std::string& path) const override {
    return Save(path);
  }
  // `dataset` must match the stored fingerprint and outlive the searcher.
  static Result<std::unique_ptr<LshEnsembleSearcher>> Load(
      const std::string& path, const Dataset& dataset);
  static Result<std::unique_ptr<LshEnsembleSearcher>> LoadFrom(
      const io::SnapshotReader& snapshot, const Dataset& dataset);

 private:
  struct Partition {
    size_t upper_bound = 0;  // u: largest record size in the partition
    std::vector<RecordId> ids;  // members, in size-sorted order
    std::unique_ptr<MinHashLshIndex> index;
  };

  LshEnsembleSearcher(const Dataset& dataset, const LshEnsembleOptions& options);

  const Dataset& dataset_;
  LshEnsembleOptions options_;
  HashFamily family_;
  std::vector<Partition> partitions_;
  std::vector<MinHashSignature> signatures_;  // per record id
};

}  // namespace gbkmv

#endif  // GBKMV_INDEX_LSH_ENSEMBLE_H_
