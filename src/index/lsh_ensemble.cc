#include "index/lsh_ensemble.h"

#include <algorithm>
#include <numeric>

#include "common/thread_pool.h"
#include "sketch/parallel_build.h"

namespace gbkmv {

LshEnsembleSearcher::LshEnsembleSearcher(const Dataset& dataset,
                                         const LshEnsembleOptions& options)
    : dataset_(dataset),
      options_(options),
      family_(options.num_hashes, options.seed) {}

Result<std::unique_ptr<LshEnsembleSearcher>> LshEnsembleSearcher::Create(
    const Dataset& dataset, const LshEnsembleOptions& options) {
  if (options.num_hashes == 0) {
    return Status::InvalidArgument("num_hashes must be positive");
  }
  if (options.num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  if (dataset.empty()) {
    return Status::InvalidArgument("dataset is empty");
  }
  std::unique_ptr<LshEnsembleSearcher> searcher(
      new LshEnsembleSearcher(dataset, options));

  const std::unique_ptr<ThreadPool> pool =
      MakeBuildPool(options.num_threads, dataset.size());

  // One signature per record, shared by all partitions.
  searcher->signatures_ =
      BuildSketchesParallel(dataset, searcher->family_, pool.get());

  // Equal-depth partitioning by record size (the optimal partition of [44]).
  std::vector<RecordId> order(dataset.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&dataset](RecordId a, RecordId b) {
    const size_t sa = dataset.record(a).size();
    const size_t sb = dataset.record(b).size();
    return sa != sb ? sa < sb : a < b;
  });

  const size_t num_parts = std::min(options.num_partitions, dataset.size());
  const std::vector<size_t> rows = DefaultRowChoices(options.num_hashes);
  // Sharded build: partitions are laid out serially, then each banding index
  // (the expensive part) is built independently in its own slot.
  std::vector<std::pair<size_t, size_t>> ranges;
  for (size_t p = 0; p < num_parts; ++p) {
    const size_t begin = p * dataset.size() / num_parts;
    const size_t end = (p + 1) * dataset.size() / num_parts;
    if (begin < end) ranges.emplace_back(begin, end);
  }
  searcher->partitions_.resize(ranges.size());
  const auto build_partition = [&](size_t p) {
    const auto [begin, end] = ranges[p];
    Partition& part = searcher->partitions_[p];
    std::vector<MinHashSignature> sigs;
    sigs.reserve(end - begin);
    part.ids.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) {
      part.ids.push_back(order[i]);
      sigs.push_back(searcher->signatures_[order[i]]);
      part.upper_bound =
          std::max(part.upper_bound, dataset.record(order[i]).size());
    }
    part.index = std::make_unique<MinHashLshIndex>(sigs, part.ids,
                                                   options.num_hashes, rows);
  };
  if (pool == nullptr) {
    for (size_t p = 0; p < ranges.size(); ++p) build_partition(p);
  } else {
    pool->ParallelFor(0, ranges.size(), 1,
                      [&](size_t begin, size_t end, size_t /*chunk*/) {
                        for (size_t p = begin; p < end; ++p) {
                          build_partition(p);
                        }
                      });
  }
  return searcher;
}

QueryResponse LshEnsembleSearcher::SearchQ(const QueryRequest& request,
                                           QueryContext& ctx) const {
  QueryResponse response;
  const Record& query = *request.record;
  if (query.empty()) return response;
  const MinHashSignature query_sig = MinHashSignature::Build(query, family_);
  const size_t q = query.size();

  HitCollector collector(request, ctx, &response);
  for (const Partition& part : partitions_) {
    // Containment -> Jaccard threshold with the partition upper bound
    // (Eq. 13). Thresholds above 1 cannot be met; clamp tiny ones so the
    // band optimiser stays meaningful.
    const double s_star =
        ContainmentToJaccard(request.threshold, q, part.upper_bound);
    if (s_star > 1.0) continue;
    const BandParams params = OptimalBandParams(
        options_.num_hashes, s_star, part.index->row_choices());
    const std::vector<RecordId> ids = part.index->Query(
        query_sig, params, &response.stats.postings_scanned);
    response.stats.candidates_generated += ids.size();
    // Scoring a candidate reads its full stored signature (k values) — work
    // the legacy boolean path never did, so it runs only when the caller
    // asked for scores or ranking. Partitions are disjoint by construction,
    // so no cross-partition dedup is needed; the score uses this
    // partition's upper bound (Eq. 15).
    const bool need_scores = request.want_scores || request.top_k > 0;
    for (RecordId id : ids) {
      const double estimate =
          need_scores ? EstimateContainmentMinHash(query_sig, signatures_[id],
                                                   q, part.upper_bound)
                      : 0.0;
      collector.Add(id, std::clamp(estimate, 0.0, 1.0));
    }
  }
  collector.Finish();
  return response;
}

double LshEnsembleSearcher::EstimateContainment(const Record& query,
                                                RecordId id) const {
  const MinHashSignature query_sig = MinHashSignature::Build(query, family_);
  // Find the partition of `id` for its upper bound (Eq. 15 uses u, not x).
  size_t u = dataset_.record(id).size();
  for (const Partition& part : partitions_) {
    if (dataset_.record(id).size() <= part.upper_bound) {
      u = part.upper_bound;
      break;
    }
  }
  return EstimateContainmentMinHash(query_sig, signatures_[id], query.size(),
                                    u);
}

uint64_t LshEnsembleSearcher::BudgetSpaceUnits() const {
  return static_cast<uint64_t>(dataset_.size()) * options_.num_hashes;
}

uint64_t LshEnsembleSearcher::SpaceUnits() const {
  // Signatures (the paper's m·k units) plus the resident banding structures:
  // every partition's flat bucket tables and its member-id list. The paper
  // reports only m·k; the extra terms are the real footprint of the
  // precomputed row-choice tables (docs/snapshot_format.md).
  uint64_t units = static_cast<uint64_t>(dataset_.size()) * options_.num_hashes;
  for (const Partition& part : partitions_) {
    units += part.index->SpaceUnits() + part.ids.size();
  }
  return units;
}

}  // namespace gbkmv
