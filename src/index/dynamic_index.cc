#include "index/dynamic_index.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"
#include "sketch/gkmv.h"
#include "storage/query_context.h"

namespace gbkmv {

namespace {

// O(1) G-KMV pair estimate from summary counts (same derivation as the
// static index: k = |L_Q| + |L_X| − K∩, U(k) = max of the two maxima).
double GkmvEstimateFromCounts(size_t k_intersect, size_t q_size, size_t x_size,
                              uint64_t q_max, uint64_t x_max) {
  if (q_size == 0 || x_size == 0) return 0.0;
  const size_t k = q_size + x_size - k_intersect;
  if (k < 2) return 0.0;
  const double u_k = HashToUnit(std::max(q_max, x_max));
  if (u_k <= 0.0) return 0.0;
  const double kd = static_cast<double>(k);
  return static_cast<double>(k_intersect) / kd * (kd - 1.0) / u_k;
}

}  // namespace

Result<std::unique_ptr<DynamicGbKmvIndex>> DynamicGbKmvIndex::Create(
    const Dataset& initial, const DynamicGbKmvOptions& options) {
  if (options.budget_units == 0) {
    return Status::InvalidArgument("budget_units must be positive");
  }
  if (options.shrink_fill <= 0.0 || options.shrink_fill > 1.0) {
    return Status::InvalidArgument("shrink_fill must be in (0, 1]");
  }
  if (options.buffer_bits > 0 &&
      options.buffer_bits > initial.elements_by_frequency().size()) {
    return Status::InvalidArgument(
        "buffer_bits exceeds the initial dataset's distinct elements");
  }

  std::unique_ptr<DynamicGbKmvIndex> index(new DynamicGbKmvIndex());
  index->options_ = options;
  index->buffer_elements_.assign(
      initial.elements_by_frequency().begin(),
      initial.elements_by_frequency().begin() + options.buffer_bits);
  index->RebuildBufferMap(initial.universe_size());

  for (const Record& r : initial.records()) {
    if (!IsNormalized(r)) {
      return Status::InvalidArgument("initial dataset has unnormalised records");
    }
  }
  for (const Record& r : initial.records()) index->Insert(r);
  index->Compact();
  return index;
}

void DynamicGbKmvIndex::Compact() {
  if (!delta_.empty()) CompactPostings();
}

void DynamicGbKmvIndex::RebuildBufferMap(size_t universe_size) {
  size_t needed = universe_size;
  for (ElementId e : buffer_elements_) {
    needed = std::max<size_t>(needed, static_cast<size_t>(e) + 1);
  }
  element_to_bit_.assign(needed, -1);
  for (size_t bit = 0; bit < buffer_elements_.size(); ++bit) {
    element_to_bit_[buffer_elements_[bit]] = static_cast<int32_t>(bit);
  }
}

GbKmvSketch DynamicGbKmvIndex::MakeSketch(const Record& record) const {
  GbKmvSketch sketch;
  sketch.buffer = Bitmap(options_.buffer_bits);
  Record non_buffered;
  non_buffered.reserve(record.size());
  for (ElementId e : record) {
    const int32_t bit =
        e < element_to_bit_.size() ? element_to_bit_[e] : -1;
    if (bit >= 0) {
      sketch.buffer.Set(static_cast<size_t>(bit));
    } else {
      non_buffered.push_back(e);
    }
  }
  sketch.gkmv = GkmvSketch::Build(non_buffered, threshold_, options_.seed);
  return sketch;
}

RecordId DynamicGbKmvIndex::Insert(Record record) {
  GBKMV_CHECK(IsNormalized(record));
  const RecordId id = static_cast<RecordId>(records_.size());
  GbKmvSketch sketch = MakeSketch(record);
  used_units_ += sketch.SpaceUnits(options_.buffer_bits);
  for (uint64_t h : sketch.gkmv.values()) delta_.emplace_back(h, id);
  records_.push_back(std::move(record));
  sketches_.push_back(std::move(sketch));
  if (used_units_ > options_.budget_units) {
    Shrink();  // re-sketches everything, which compacts as a side effect
  } else if (delta_.size() >
             std::max<size_t>(256, hash_postings_.num_postings() / 8)) {
    CompactPostings();
  }
  return id;
}

void DynamicGbKmvIndex::CompactPostings() {
  hash_postings_ = FlatHashPostings::Build([this](const auto& fn) {
    for (size_t i = 0; i < sketches_.size(); ++i) {
      for (uint64_t h : sketches_[i].gkmv.values()) {
        fn(h, static_cast<RecordId>(i));
      }
    }
  });
  delta_.clear();
}

void DynamicGbKmvIndex::Shrink() {
  const uint64_t target_total = std::max<uint64_t>(
      1, static_cast<uint64_t>(options_.shrink_fill *
                               static_cast<double>(options_.budget_units)));

  // If the bitmaps alone outgrow the target (the record count keeps rising
  // under a fixed budget), halve the buffer width until they fit in at most
  // half the target; the freed elements fall back into the G-KMV pool.
  auto bitmap_cost = [this]() {
    return static_cast<uint64_t>(records_.size()) *
           ((options_.buffer_bits + 31) / 32);
  };
  while (options_.buffer_bits > 0 && bitmap_cost() > target_total / 2) {
    options_.buffer_bits /= 2;
    buffer_elements_.resize(options_.buffer_bits);
    RebuildBufferMap(element_to_bit_.size());
  }

  // Choose the largest τ' whose kept-hash volume fits the remaining
  // allowance. Hashes are recomputed from the records so a buffer-width
  // change is handled by the same path as a plain truncation.
  const uint64_t hash_allowance = target_total - bitmap_cost();
  std::vector<uint64_t> all_hashes;
  all_hashes.reserve(used_units_);
  for (const Record& r : records_) {
    for (ElementId e : r) {
      const int32_t bit = e < element_to_bit_.size() ? element_to_bit_[e] : -1;
      if (bit >= 0) continue;
      const uint64_t h = HashElement(e, options_.seed);
      if (h <= threshold_) all_hashes.push_back(h);
    }
  }
  std::sort(all_hashes.begin(), all_hashes.end());
  if (all_hashes.size() > hash_allowance) {
    // Cut strictly below the first dropped value (equal hashes mean the
    // same element across records and must share fate).
    const uint64_t first_dropped = all_hashes[hash_allowance];
    threshold_ =
        std::min(threshold_, first_dropped == 0 ? 0 : first_dropped - 1);
  }

  // Re-sketch everything under the new τ / buffer width.
  used_units_ = 0;
  for (size_t i = 0; i < records_.size(); ++i) {
    sketches_[i] = MakeSketch(records_[i]);
    used_units_ += sketches_[i].SpaceUnits(options_.buffer_bits);
  }
  CompactPostings();
}

Status DynamicGbKmvIndex::Rebuild() {
  Result<Dataset> dataset = Dataset::Create(records_, "dynamic-rebuild");
  if (!dataset.ok()) return dataset.status();
  const size_t r = std::min<size_t>(options_.buffer_bits,
                                    dataset->elements_by_frequency().size());
  buffer_elements_.assign(dataset->elements_by_frequency().begin(),
                          dataset->elements_by_frequency().begin() + r);
  RebuildBufferMap(dataset->universe_size());

  threshold_ = ~0ULL;
  used_units_ = 0;
  std::vector<Record> records = std::move(records_);
  records_.clear();
  sketches_.clear();
  delta_.clear();
  hash_postings_ = FlatHashPostings();
  for (Record& rec : records) Insert(std::move(rec));
  Compact();
  return Status::OK();
}

QueryResponse DynamicGbKmvIndex::SearchQ(const QueryRequest& request,
                                         QueryContext& ctx) const {
  QueryResponse response;
  const Record& query = *request.record;
  if (query.empty() || records_.empty()) return response;
  const size_t q = query.size();
  const double theta = request.threshold * static_cast<double>(q);
  const double inv_q = 1.0 / static_cast<double>(q);
  const size_t min_size = static_cast<size_t>(std::ceil(theta - 1e-9));

  const GbKmvSketch query_sketch = MakeSketch(query);
  const std::vector<uint64_t>& q_hashes = query_sketch.gkmv.values();
  const uint64_t q_max = q_hashes.empty() ? 0 : q_hashes.back();

  HitCollector collector(request, ctx, &response);
  ctx.Begin(records_.size());
  if (q_hashes.size() < QueryContext::kSaturated) {
    for (uint64_t h : q_hashes) {
      const std::span<const RecordId> row = hash_postings_.Find(h);
      response.stats.postings_scanned += row.size();
      ctx.BumpRowUnchecked(row);
    }
  } else {
    for (uint64_t h : q_hashes) {
      const std::span<const RecordId> row = hash_postings_.Find(h);
      response.stats.postings_scanned += row.size();
      ctx.BumpRow(row);
    }
  }
  // Pairs inserted since the last compaction: one linear scan of the delta
  // log, matching each pair against the (sorted) query hash set.
  response.stats.postings_scanned += delta_.size();
  for (const auto& [h, id] : delta_) {
    if (std::binary_search(q_hashes.begin(), q_hashes.end(), h)) ctx.Bump(id);
  }
  size_t size_pruned = 0;
  for (RecordId id : ctx.touched()) {
    const size_t k_intersect = ctx.CountOf(id);
    if (records_[id].size() < min_size) {
      ++size_pruned;
      continue;
    }
    const GbKmvSketch& x = sketches_[id];
    const size_t o1 = Bitmap::IntersectCount(query_sketch.buffer, x.buffer);
    const uint64_t x_max = x.gkmv.empty() ? 0 : x.gkmv.values().back();
    const double est =
        static_cast<double>(o1) +
        GkmvEstimateFromCounts(k_intersect, q_hashes.size(), x.gkmv.size(),
                               q_max, x_max);
    const double cap =
        static_cast<double>(std::min<size_t>(q, records_[id].size()));
    const double estimate = std::min(est, cap);
    if (estimate >= theta - 1e-9) collector.Add(id, estimate * inv_q);
  }
  response.stats.candidates_generated += ctx.touched().size() - size_pruned;
  // Buffer-only qualifiers (K∩ = 0). Touched records are skipped: they were
  // fully scored above with est >= o1, so any buffer-only qualifier among
  // them is already collected.
  if (!query_sketch.buffer.Empty()) {
    size_t skipped = 0;
    for (size_t i = 0; i < sketches_.size(); ++i) {
      if (records_[i].size() < min_size ||
          ctx.CountOf(static_cast<uint32_t>(i)) > 0) {
        ++skipped;
        continue;
      }
      const size_t o1 =
          Bitmap::IntersectCount(query_sketch.buffer, sketches_[i].buffer);
      if (static_cast<double>(o1) >= theta - 1e-9) {
        collector.Add(static_cast<RecordId>(i),
                      static_cast<double>(o1) * inv_q);
      }
    }
    // Bitmap reads, not postings; one entry per examined record
    // (batch-counted, same accounting as the static index).
    const size_t examined = sketches_.size() - skipped;
    response.stats.candidates_generated += examined;
    response.stats.postings_scanned += examined;
  }
  collector.Finish();
  return response;
}

double DynamicGbKmvIndex::EstimateContainment(const Record& query,
                                              RecordId id) const {
  if (query.empty()) return 0.0;
  const GbKmvSketch query_sketch = MakeSketch(query);
  const GbKmvPairEstimate est =
      GbKmvSketcher::EstimatePair(query_sketch, sketches_[id]);
  const double cap =
      static_cast<double>(std::min<size_t>(query.size(), records_[id].size()));
  return std::min(est.intersection_size, cap) /
         static_cast<double>(query.size());
}

}  // namespace gbkmv
