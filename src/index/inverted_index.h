// Inverted index substrate: element id -> sorted posting list of record ids.
// Shared by the exact search methods (FreqSet ScanCount, PPjoin* prefix
// index) and the fast ground-truth oracle.
//
// Two storage backends, selected at construction and invisible in results:
//   * kFlat — the CSR layout of storage/posting_store.h; fastest scans.
//   * kCompressed — delta + bit-packed blocks
//     (storage/compressed_posting_store.h); a fraction of the resident
//     footprint, decoded per row into QueryContext scratch by the SIMD
//     unpack kernels during scans.

#ifndef GBKMV_INDEX_INVERTED_INDEX_H_
#define GBKMV_INDEX_INVERTED_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "index/searcher.h"
#include "storage/compressed_posting_store.h"
#include "storage/posting_store.h"
#include "storage/query_context.h"

namespace gbkmv {

class ThreadPool;

enum class PostingStoreKind : uint8_t {
  kFlat = 0,
  kCompressed = 1,
};

class InvertedIndex {
 public:
  // Builds postings for every element of every record in `dataset`. A
  // non-null pool shards the build (per-shard count + scatter, merged in
  // shard order) producing postings byte-identical to the serial build.
  // With kCompressed the flat postings are compressed and dropped after the
  // build, keeping only the block-compressed arena resident.
  explicit InvertedIndex(const Dataset& dataset, ThreadPool* pool = nullptr,
                         PostingStoreKind kind = PostingStoreKind::kFlat);

  // Rehydrates a compressed-backend index from a loaded store (legacy
  // snapshot path; skips the flat build + compress). Corruption if the
  // store's shape disagrees with the dataset.
  static Result<InvertedIndex> FromCompressed(const Dataset& dataset,
                                              CompressedPostingStore store);

  // Snapshot v3 aligned serialization: kind + shape scalars + the backend
  // payload in the 64-byte-aligned array encoding, fully self-contained (no
  // dataset needed on load). borrow=true serves postings from the reader's
  // buffer in place (mapped snapshot; the caller keeps the mapping alive);
  // either mode validates every posting id against the stored record count
  // before the index is exposed.
  void SaveToAligned(io::Writer* out) const;
  static Result<InvertedIndex> LoadFromAligned(io::Reader* in, bool borrow);

  PostingStoreKind kind() const { return kind_; }
  size_t num_records() const { return num_records_; }
  bool borrowed() const {
    return kind_ == PostingStoreKind::kFlat ? store_.borrowed()
                                            : compressed_.borrowed();
  }

  // The compressed payload (kCompressed backend only; snapshot writers).
  const CompressedPostingStore& compressed() const {
    GBKMV_CHECK(kind_ == PostingStoreKind::kCompressed);
    return compressed_;
  }

  // Posting list (ascending record ids) of `element`; empty for unseen ids.
  // Flat backend only — compressed rows exist only as decoded copies in
  // per-query scratch.
  std::span<const RecordId> Postings(ElementId element) const {
    GBKMV_CHECK(kind_ == PostingStoreKind::kFlat);
    return store_.Row(element);
  }

  // Posting count of `element`, either backend.
  uint32_t RowLength(ElementId element) const {
    return kind_ == PostingStoreKind::kFlat
               ? static_cast<uint32_t>(store_.Row(element).size())
               : compressed_.RowLength(element);
  }

  // Σ posting lengths (= total elements), i.e. payload size in entries.
  uint64_t TotalPostings() const {
    return kind_ == PostingStoreKind::kFlat ? store_.size()
                                            : compressed_.size();
  }

  // Resident storage in 32-bit units.
  uint64_t SpaceUnits() const {
    return kind_ == PostingStoreKind::kFlat ? store_.SpaceUnits()
                                            : compressed_.SpaceUnits();
  }

  // ScanCount: number of query elements shared with each record. Returns the
  // ids of records whose overlap with `query` is >= min_overlap, by counting
  // occurrences across the query's posting lists in the caller's scratch
  // arena (pass ThreadLocalQueryContext() unless composing with an outer
  // counting pass). `min_overlap == 0` is clamped to 1 — "any overlap at
  // all" — so every record sharing at least one element qualifies (an empty
  // query still returns nothing). After the call, ctx holds the overlap
  // count of every touched record (CountOf), so callers can score the
  // returned ids without re-counting. A non-null `stats` accumulates
  // postings_scanned (posting entries the scan read) and
  // candidates_generated (records with any overlap) — O(|Q|) extra work,
  // never per-posting.
  std::vector<RecordId> ScanCount(const Record& query, size_t min_overlap,
                                  QueryContext& ctx,
                                  QueryStats* stats = nullptr) const;

  // The counting phases of ScanCount without the output pass: after the
  // call, ctx holds the overlap of every touched record and callers emit
  // results themselves (one pass instead of materialise-then-copy).
  // `min_overlap` (clamped to >= 1) only gates the execution strategy —
  // counts are exact for every touched record regardless. Three strategies,
  // chosen per query from the posting volume alone (deterministic for any
  // thread count and dispatch level):
  //   * dense  — volume >= dataset size: plain u16 counters + SIMD
  //     threshold emission (ctx.touched() comes back ascending);
  //   * split  — high θ on the flat backend: prefix-filtered two-phase
  //     generate/refine with prefetching binary probes;
  //   * sparse — everything else: epoch-stamped counting in first-touch
  //     order.
  void CountOverlaps(const Record& query, size_t min_overlap,
                     QueryContext& ctx, QueryStats* stats = nullptr) const;

 private:
  InvertedIndex() = default;  // FromCompressed fills the members itself.

  PostingStore store_;                 // kFlat payload (empty otherwise)
  CompressedPostingStore compressed_;  // kCompressed payload
  PostingStoreKind kind_ = PostingStoreKind::kFlat;
  size_t num_records_ = 0;
};

}  // namespace gbkmv

#endif  // GBKMV_INDEX_INVERTED_INDEX_H_
