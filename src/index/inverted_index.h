// Inverted index substrate: element id -> sorted posting list of record ids.
// Shared by the exact search methods (FreqSet ScanCount, PPjoin* prefix
// index) and the fast ground-truth oracle.

#ifndef GBKMV_INDEX_INVERTED_INDEX_H_
#define GBKMV_INDEX_INVERTED_INDEX_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "index/searcher.h"

namespace gbkmv {

class ThreadPool;

class InvertedIndex {
 public:
  // Builds postings for every element of every record in `dataset`. A
  // non-null pool shards the build (per-shard count + scatter, merged in
  // shard order) producing postings byte-identical to the serial build.
  explicit InvertedIndex(const Dataset& dataset, ThreadPool* pool = nullptr);

  // Posting list (ascending record ids) of `element`; empty for unseen ids.
  const std::vector<RecordId>& Postings(ElementId element) const;

  // Σ posting lengths (= total elements), i.e. index size in entries.
  uint64_t TotalPostings() const { return total_postings_; }

  // ScanCount: number of query elements shared with each record. Returns the
  // ids of records whose overlap with `query` is >= min_overlap, by counting
  // occurrences across the query's posting lists. `min_overlap` must be >= 1.
  std::vector<RecordId> ScanCount(const Record& query,
                                  size_t min_overlap) const;

  // Same with caller-provided scratch (all-zero, size >= dataset size; left
  // zeroed on return), so concurrent callers can hold one counter each.
  std::vector<RecordId> ScanCount(const Record& query, size_t min_overlap,
                                  std::vector<uint32_t>& counter) const;

 private:
  std::vector<std::vector<RecordId>> postings_;
  uint64_t total_postings_ = 0;
  // Scratch counter reused across ScanCount calls (sized to the dataset).
  mutable std::vector<uint32_t> counter_;
};

}  // namespace gbkmv

#endif  // GBKMV_INDEX_INVERTED_INDEX_H_
