// Inverted index substrate: element id -> sorted posting list of record ids,
// stored flat (storage/posting_store.h CSR layout). Shared by the exact
// search methods (FreqSet ScanCount, PPjoin* prefix index) and the fast
// ground-truth oracle.

#ifndef GBKMV_INDEX_INVERTED_INDEX_H_
#define GBKMV_INDEX_INVERTED_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "data/dataset.h"
#include "index/searcher.h"
#include "storage/posting_store.h"
#include "storage/query_context.h"

namespace gbkmv {

class ThreadPool;

class InvertedIndex {
 public:
  // Builds postings for every element of every record in `dataset`. A
  // non-null pool shards the build (per-shard count + scatter, merged in
  // shard order) producing postings byte-identical to the serial build.
  explicit InvertedIndex(const Dataset& dataset, ThreadPool* pool = nullptr);

  // Posting list (ascending record ids) of `element`; empty for unseen ids.
  std::span<const RecordId> Postings(ElementId element) const {
    return store_.Row(element);
  }

  // Σ posting lengths (= total elements), i.e. payload size in entries.
  uint64_t TotalPostings() const { return store_.size(); }

  // Resident storage in 32-bit units: offsets + posting values.
  uint64_t SpaceUnits() const { return store_.SpaceUnits(); }

  // ScanCount: number of query elements shared with each record. Returns the
  // ids of records whose overlap with `query` is >= min_overlap, by counting
  // occurrences across the query's posting lists in the caller's scratch
  // arena (pass ThreadLocalQueryContext() unless composing with an outer
  // counting pass). `min_overlap` must be >= 1. After the call, ctx holds
  // the overlap count of every touched record (CountOf), so callers can
  // score the returned ids without re-counting. A non-null `stats`
  // accumulates postings_scanned (posting entries the scan read) and
  // candidates_generated (records touched) — O(|Q|) extra work, never
  // per-posting.
  std::vector<RecordId> ScanCount(const Record& query, size_t min_overlap,
                                  QueryContext& ctx,
                                  QueryStats* stats = nullptr) const;

  // The counting phases of ScanCount without the output pass: after the
  // call, ctx holds the overlap of every touched record and callers emit
  // results themselves (one pass instead of materialise-then-copy).
  // `min_overlap` only gates the prefix-filter split; counts are exact for
  // every touched record regardless.
  void CountOverlaps(const Record& query, size_t min_overlap,
                     QueryContext& ctx, QueryStats* stats = nullptr) const;

 private:
  PostingStore store_;
  size_t num_records_ = 0;
};

}  // namespace gbkmv

#endif  // GBKMV_INDEX_INVERTED_INDEX_H_
