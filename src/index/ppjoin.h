// PPjoin*-style exact containment search (Xiao et al., TODS 2011), adapted
// from similarity joins to search as §V of the paper describes.
//
// The containment predicate C(Q,X) >= t* is equivalent to the overlap
// predicate |Q∩X| >= θ with θ = ⌈t*·|Q|⌉ (Eq. 23). With every record's
// tokens ordered by ascending global frequency (rarest first):
//   * prefix filter — if |Q∩X| >= θ, the first |Q|−θ+1 tokens of Q and the
//     first |X|−θ+1 tokens of X share at least one token (pigeonhole);
//   * positional filter — a shared prefix token at positions (i, pos) bounds
//     the overlap by 1 + min(|Q|−i−1, |X|−pos−1);
//   * size filter — |X| >= θ.
// Candidates surviving the filters are verified with an exact merge.

#ifndef GBKMV_INDEX_PPJOIN_H_
#define GBKMV_INDEX_PPJOIN_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "index/searcher.h"
#include "storage/posting_store.h"

namespace gbkmv {

class PPJoinSearcher : public ContainmentSearcher {
 public:
  // Builds the positional prefix index. `dataset` must outlive the searcher.
  // A non-null pool shards the posting build (byte-identical result).
  explicit PPJoinSearcher(const Dataset& dataset, ThreadPool* pool = nullptr);

  // Safe for concurrent callers with distinct QueryContext arenas. Hit
  // scores are exact containment |Q∩X|/|Q| from the verification merge.
  QueryResponse SearchQ(const QueryRequest& request,
                        QueryContext& ctx) const override;
  std::string name() const override { return "PPjoin*"; }
  uint64_t SpaceUnits() const override;
  // Paper measure: two units per positional posting entry.
  uint64_t BudgetSpaceUnits() const override { return 2 * postings_.size(); }
  bool exact() const override { return true; }

 private:
  struct Posting {
    RecordId id;
    uint32_t position;  // token position in the frequency-ordered record
  };

  const Dataset& dataset_;
  // Global token order: rank_[e] = position of e when sorted by ascending
  // frequency (rarest first). Rarer tokens give shorter candidate lists.
  std::vector<uint32_t> rank_;
  CsrStore<Posting> postings_;  // token -> positional postings
  // Flat element-order copy of the dataset records (CSR: offsets + payload).
  // Candidates arrive in arbitrary id order, and both the prefix scan's size
  // filter and the verification merges would otherwise chase each record's
  // separate heap allocation; the flat copy makes |X| two adjacent offset
  // loads and hands the SIMD intersection kernels one contiguous span.
  std::vector<uint32_t> record_offsets_;  // dataset_.size() + 1 row starts
  std::vector<ElementId> record_elems_;   // concatenated sorted records
};

}  // namespace gbkmv

#endif  // GBKMV_INDEX_PPJOIN_H_
