// Synthetic set-valued data generation.
//
// Reproduces the workloads of §V: record sizes drawn from a truncated power
// law with exponent α2 (recSize z-value), elements drawn from a Zipf
// distribution over the universe with exponent α1 (eleFreq z-value), sampled
// without replacement within a record. α = 0 yields the uniform workloads of
// Fig. 19(a).

#ifndef GBKMV_DATA_SYNTHETIC_H_
#define GBKMV_DATA_SYNTHETIC_H_

#include <cstdint>
#include <string>

#include "data/dataset.h"

namespace gbkmv {

struct SyntheticConfig {
  std::string name = "synthetic";
  size_t num_records = 10000;       // m
  size_t universe_size = 100000;    // n (element ids 0..n-1)
  size_t min_record_size = 10;      // paper discards records smaller than 10
  size_t max_record_size = 1000;
  double alpha_element_freq = 1.0;  // α1; 0 = uniform element popularity
  double alpha_record_size = 2.0;   // α2; 0 = uniform sizes
  uint64_t seed = 42;
};

// Generates a dataset according to `config`. Returns InvalidArgument for
// inconsistent parameters (e.g. min size > universe).
Result<Dataset> GenerateSynthetic(const SyntheticConfig& config);

}  // namespace gbkmv

#endif  // GBKMV_DATA_SYNTHETIC_H_
