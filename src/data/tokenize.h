// Text-to-record substrate: dictionary encoding plus the two tokenizations
// the paper's application domains use — word sets (record matching, emails)
// and character q-gram shingles (error-tolerant search, where higher-order
// shingles blow up the vocabulary; §I "Challenges").

#ifndef GBKMV_DATA_TOKENIZE_H_
#define GBKMV_DATA_TOKENIZE_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "data/record.h"

namespace gbkmv {

// Bidirectional string <-> dense element id mapping.
class Dictionary {
 public:
  // Returns the id of `token`, assigning the next free id on first sight.
  ElementId Encode(std::string_view token);

  // Id of `token` if known, otherwise -1 (queries against a frozen
  // vocabulary must not grow it).
  int64_t Lookup(std::string_view token) const;

  // Inverse mapping; id must have been issued by Encode.
  const std::string& Decode(ElementId id) const;

  size_t size() const { return tokens_.size(); }

 private:
  std::unordered_map<std::string, ElementId> ids_;
  std::vector<std::string> tokens_;
};

// Splits on whitespace, lower-cases, strips non-alphanumeric edges.
// "Five Guys, Burgers!" -> {"five", "guys", "burgers"}.
std::vector<std::string> SplitWords(std::string_view text);

// Character q-grams of the lower-cased text (q >= 1); texts shorter than q
// yield one gram (the whole text). "abcd", q=2 -> {"ab", "bc", "cd"}.
std::vector<std::string> CharacterShingles(std::string_view text, size_t q);

// Encodes the word set of `text` as a record.
Record EncodeWords(std::string_view text, Dictionary& dict);

// Encodes the q-gram set of `text` as a record.
Record EncodeShingles(std::string_view text, size_t q, Dictionary& dict);

// Query-side variants against a frozen dictionary: unknown tokens are
// dropped (they cannot occur in any indexed record).
Record EncodeWordsFrozen(std::string_view text, const Dictionary& dict);
Record EncodeShinglesFrozen(std::string_view text, size_t q,
                            const Dictionary& dict);

}  // namespace gbkmv

#endif  // GBKMV_DATA_TOKENIZE_H_
