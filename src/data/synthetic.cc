#include "data/synthetic.h"

#include <algorithm>
#include <unordered_set>

#include "common/power_law.h"
#include "common/random.h"

namespace gbkmv {

Result<Dataset> GenerateSynthetic(const SyntheticConfig& config) {
  if (config.num_records == 0) {
    return Status::InvalidArgument("num_records must be positive");
  }
  if (config.universe_size == 0) {
    return Status::InvalidArgument("universe_size must be positive");
  }
  if (config.min_record_size == 0 ||
      config.min_record_size > config.max_record_size) {
    return Status::InvalidArgument("invalid record size range");
  }
  if (config.max_record_size > config.universe_size) {
    return Status::InvalidArgument(
        "max_record_size exceeds universe_size; records are sets");
  }
  if (config.alpha_element_freq < 0 || config.alpha_record_size < 0) {
    return Status::InvalidArgument("power-law exponents must be >= 0");
  }

  Rng rng(config.seed);
  const ZipfDistribution size_dist(config.min_record_size,
                                   config.max_record_size,
                                   config.alpha_record_size);
  // Element popularity: rank i (0-based) has probability ∝ (i+1)^{-α1}.
  // Identity mapping rank -> element id keeps generated ids interpretable
  // (id 0 is the most frequent element).
  const ZipfDistribution elem_dist(1, config.universe_size,
                                   config.alpha_element_freq);

  std::vector<Record> records;
  records.reserve(config.num_records);
  std::vector<ElementId> scratch;
  std::unordered_set<ElementId> seen;
  for (size_t i = 0; i < config.num_records; ++i) {
    const size_t target = static_cast<size_t>(size_dist.Sample(rng));
    scratch.clear();
    seen.clear();
    // Rejection sampling without replacement. For highly skewed universes a
    // record may saturate the head of the distribution; cap the attempts and
    // fall back to sequential ids to guarantee progress.
    size_t attempts = 0;
    const size_t max_attempts = 64 * target + 1024;
    while (scratch.size() < target && attempts < max_attempts) {
      ++attempts;
      const ElementId e = static_cast<ElementId>(elem_dist.Sample(rng) - 1);
      if (seen.insert(e).second) scratch.push_back(e);
    }
    ElementId fill = 0;
    while (scratch.size() < target &&
           fill < static_cast<ElementId>(config.universe_size)) {
      if (seen.insert(fill).second) scratch.push_back(fill);
      ++fill;
    }
    records.push_back(MakeRecord(std::move(scratch)));
    scratch = {};
  }
  return Dataset::Create(std::move(records), config.name);
}

}  // namespace gbkmv
