#include "data/proxies.h"

#include <algorithm>

#include "common/status.h"

namespace gbkmv {

const std::vector<PaperDataset>& AllPaperDatasets() {
  static const std::vector<PaperDataset>* kAll = new std::vector<PaperDataset>{
      PaperDataset::kNetflix,       PaperDataset::kDelicious,
      PaperDataset::kCanadianOpenData, PaperDataset::kEnron,
      PaperDataset::kReuters,       PaperDataset::kWebspam,
      PaperDataset::kWdcWebTable,
  };
  return *kAll;
}

std::string PaperDatasetName(PaperDataset d) {
  switch (d) {
    case PaperDataset::kNetflix: return "NETFLIX";
    case PaperDataset::kDelicious: return "DELIC";
    case PaperDataset::kCanadianOpenData: return "COD";
    case PaperDataset::kEnron: return "ENRON";
    case PaperDataset::kReuters: return "REUTERS";
    case PaperDataset::kWebspam: return "WEBSPAM";
    case PaperDataset::kWdcWebTable: return "WDC";
  }
  return "UNKNOWN";
}

PublishedStats PaperDatasetPublishedStats(PaperDataset d) {
  switch (d) {
    case PaperDataset::kNetflix:
      return {480189, 209.25, 17770, 1.14, 4.95};
    case PaperDataset::kDelicious:
      return {833081, 98.42, 4512099, 1.14, 3.05};
    case PaperDataset::kCanadianOpenData:
      return {65553, 6284.0, 111011807, 1.09, 1.81};
    case PaperDataset::kEnron:
      return {517431, 133.57, 1113219, 1.16, 3.10};
    case PaperDataset::kReuters:
      return {833081, 77.6, 283906, 1.32, 6.61};
    case PaperDataset::kWebspam:
      return {350000, 3728.0, 16609143, 1.33, 9.34};
    case PaperDataset::kWdcWebTable:
      return {262893406, 29.2, 111562175, 1.08, 2.4};
  }
  return {};
}

SyntheticConfig ProxyConfig(PaperDataset d, double scale) {
  SyntheticConfig c;
  c.name = PaperDatasetName(d);
  // Exponents are taken verbatim from Table II. Record counts, size ranges
  // and universes are scaled so N stays around 10^6 element occurrences.
  // The minimum record size is chosen so the truncated power-law mean lands
  // near the published average length (scaled down for COD/WEBSPAM, whose
  // multi-thousand-element records would dominate the run time without
  // changing the accuracy picture).
  switch (d) {
    case PaperDataset::kNetflix:
      c.num_records = 6000;
      c.universe_size = 17770;  // real universe is already laptop-sized
      c.min_record_size = 150;
      c.max_record_size = 1500;
      c.alpha_element_freq = 1.14;
      c.alpha_record_size = 4.95;
      c.seed = 1001;
      break;
    case PaperDataset::kDelicious:
      c.num_records = 5000;
      c.universe_size = 30000;
      c.min_record_size = 50;
      c.max_record_size = 1500;
      c.alpha_element_freq = 1.14;
      c.alpha_record_size = 3.05;
      c.seed = 1002;
      break;
    case PaperDataset::kCanadianOpenData:
      c.num_records = 3000;
      c.universe_size = 120000;
      c.min_record_size = 10;
      c.max_record_size = 5000;
      c.alpha_element_freq = 1.09;
      c.alpha_record_size = 1.81;
      c.seed = 1003;
      break;
    case PaperDataset::kEnron:
      c.num_records = 5000;
      c.universe_size = 40000;
      c.min_record_size = 70;
      c.max_record_size = 2000;
      c.alpha_element_freq = 1.16;
      c.alpha_record_size = 3.10;
      c.seed = 1004;
      break;
    case PaperDataset::kReuters:
      c.num_records = 5000;
      c.universe_size = 25000;
      c.min_record_size = 64;
      c.max_record_size = 1000;
      c.alpha_element_freq = 1.32;
      c.alpha_record_size = 6.61;
      c.seed = 1005;
      break;
    case PaperDataset::kWebspam:
      c.num_records = 3000;
      c.universe_size = 100000;
      c.min_record_size = 300;
      c.max_record_size = 3000;
      c.alpha_element_freq = 1.33;
      c.alpha_record_size = 9.34;
      c.seed = 1006;
      break;
    case PaperDataset::kWdcWebTable:
      c.num_records = 12000;  // the "internet-scale" dataset keeps the
                              // largest record count among the proxies
      c.universe_size = 100000;
      c.min_record_size = 10;
      c.max_record_size = 500;
      c.alpha_element_freq = 1.08;
      c.alpha_record_size = 2.4;
      c.seed = 1007;
      break;
  }
  c.num_records = std::max<size_t>(1, static_cast<size_t>(c.num_records * scale));
  return c;
}

Result<Dataset> GenerateProxy(PaperDataset d, double scale) {
  return GenerateSynthetic(ProxyConfig(d, scale));
}

}  // namespace gbkmv
