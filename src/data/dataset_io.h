// Text I/O for datasets.
//
// Format: one record per line, whitespace-separated non-negative integer
// element ids. Lines starting with '#' and blank lines are skipped. This is
// the standard format of set-similarity benchmark dumps, so real datasets
// (e.g. dictionary-encoded NETFLIX/ENRON) can be dropped in directly.

#ifndef GBKMV_DATA_DATASET_IO_H_
#define GBKMV_DATA_DATASET_IO_H_

#include <string>

#include "data/dataset.h"

namespace gbkmv {

// Loads a dataset from `path`. Records are normalised; records with fewer
// than `min_record_size` elements are discarded (the paper drops |X| < 10).
Result<Dataset> LoadDataset(const std::string& path,
                            size_t min_record_size = 1,
                            const std::string& name = "");

// Writes `dataset` to `path` in the same format.
Status SaveDataset(const Dataset& dataset, const std::string& path);

}  // namespace gbkmv

#endif  // GBKMV_DATA_DATASET_IO_H_
