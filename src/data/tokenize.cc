#include "data/tokenize.h"

#include <algorithm>
#include <cctype>

#include "common/status.h"

namespace gbkmv {

ElementId Dictionary::Encode(std::string_view token) {
  const auto it = ids_.find(std::string(token));
  if (it != ids_.end()) return it->second;
  const ElementId id = static_cast<ElementId>(tokens_.size());
  tokens_.emplace_back(token);
  ids_.emplace(tokens_.back(), id);
  return id;
}

int64_t Dictionary::Lookup(std::string_view token) const {
  const auto it = ids_.find(std::string(token));
  return it == ids_.end() ? -1 : static_cast<int64_t>(it->second);
}

const std::string& Dictionary::Decode(ElementId id) const {
  GBKMV_CHECK(id < tokens_.size());
  return tokens_[id];
}

namespace {

std::string LowerCase(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

}  // namespace

std::vector<std::string> SplitWords(std::string_view text) {
  std::vector<std::string> words;
  std::string current;
  auto flush = [&] {
    // Strip non-alphanumeric edges ("burgers!" -> "burgers").
    size_t b = 0, e = current.size();
    while (b < e && !std::isalnum(static_cast<unsigned char>(current[b]))) ++b;
    while (e > b && !std::isalnum(static_cast<unsigned char>(current[e - 1]))) --e;
    if (e > b) words.push_back(current.substr(b, e - b));
    current.clear();
  };
  for (char raw : LowerCase(text)) {
    if (std::isspace(static_cast<unsigned char>(raw))) {
      flush();
    } else {
      current.push_back(raw);
    }
  }
  flush();
  return words;
}

std::vector<std::string> CharacterShingles(std::string_view text, size_t q) {
  GBKMV_CHECK(q >= 1);
  const std::string lower = LowerCase(text);
  std::vector<std::string> grams;
  if (lower.empty()) return grams;
  if (lower.size() <= q) {
    grams.push_back(lower);
    return grams;
  }
  grams.reserve(lower.size() - q + 1);
  for (size_t i = 0; i + q <= lower.size(); ++i) {
    grams.push_back(lower.substr(i, q));
  }
  return grams;
}

Record EncodeWords(std::string_view text, Dictionary& dict) {
  std::vector<ElementId> ids;
  for (const std::string& w : SplitWords(text)) ids.push_back(dict.Encode(w));
  return MakeRecord(std::move(ids));
}

Record EncodeShingles(std::string_view text, size_t q, Dictionary& dict) {
  std::vector<ElementId> ids;
  for (const std::string& g : CharacterShingles(text, q)) {
    ids.push_back(dict.Encode(g));
  }
  return MakeRecord(std::move(ids));
}

Record EncodeWordsFrozen(std::string_view text, const Dictionary& dict) {
  std::vector<ElementId> ids;
  for (const std::string& w : SplitWords(text)) {
    const int64_t id = dict.Lookup(w);
    if (id >= 0) ids.push_back(static_cast<ElementId>(id));
  }
  return MakeRecord(std::move(ids));
}

Record EncodeShinglesFrozen(std::string_view text, size_t q,
                            const Dictionary& dict) {
  std::vector<ElementId> ids;
  for (const std::string& g : CharacterShingles(text, q)) {
    const int64_t id = dict.Lookup(g);
    if (id >= 0) ids.push_back(static_cast<ElementId>(id));
  }
  return MakeRecord(std::move(ids));
}

}  // namespace gbkmv
