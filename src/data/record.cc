#include "data/record.h"

#include <algorithm>

#include "storage/simd/simd.h"

namespace gbkmv {

Record MakeRecord(std::vector<ElementId> elements) {
  std::sort(elements.begin(), elements.end());
  elements.erase(std::unique(elements.begin(), elements.end()), elements.end());
  return elements;
}

bool IsNormalized(const Record& r) {
  for (size_t i = 1; i < r.size(); ++i) {
    if (r[i - 1] >= r[i]) return false;
  }
  return true;
}

size_t IntersectSize(const Record& a, const Record& b) {
  // required == 0 asks the kernel for the exact |a ∩ b|.
  return Kernels().intersect_bounded(a.data(), a.size(), b.data(), b.size(), 0);
}

size_t UnionSize(const Record& a, const Record& b) {
  return a.size() + b.size() - IntersectSize(a, b);
}

double JaccardSimilarity(const Record& a, const Record& b) {
  const size_t inter = IntersectSize(a, b);
  const size_t uni = a.size() + b.size() - inter;
  if (uni == 0) return 0.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

double ContainmentSimilarity(const Record& q, const Record& x) {
  if (q.empty()) return 0.0;
  return static_cast<double>(IntersectSize(q, x)) /
         static_cast<double>(q.size());
}

bool Contains(const Record& a, ElementId element) {
  return std::binary_search(a.begin(), a.end(), element);
}

}  // namespace gbkmv
