#include "data/dataset.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/hash.h"
#include "common/power_law.h"

namespace gbkmv {

Result<Dataset> Dataset::Create(std::vector<Record> records, std::string name) {
  for (size_t i = 0; i < records.size(); ++i) {
    if (!IsNormalized(records[i])) {
      return Status::InvalidArgument("record " + std::to_string(i) +
                                     " is not sorted/unique");
    }
  }
  return CreateFromNormalized(std::move(records), std::move(name));
}

Result<Dataset> Dataset::CreateFromNormalized(std::vector<Record> records,
                                              std::string name) {
  Dataset ds;
  ds.name_ = std::move(name);
  ds.records_ = std::move(records);
  for (const Record& r : ds.records_) ds.total_elements_ += r.size();
  return ds;
}

void Dataset::EnsureFrequencyTables() const {
  if (freq_ready_) return;

  ElementId max_id = 0;
  bool any = false;
  for (const Record& r : records_) {
    if (!r.empty()) {
      max_id = std::max(max_id, r.back());
      any = true;
    }
  }
  frequency_.assign(any ? static_cast<size_t>(max_id) + 1 : 0, 0);
  for (const Record& r : records_) {
    for (ElementId e : r) ++frequency_[e];
  }
  num_distinct_ = static_cast<size_t>(
      std::count_if(frequency_.begin(), frequency_.end(),
                    [](uint64_t f) { return f > 0; }));

  by_frequency_.resize(frequency_.size());
  std::iota(by_frequency_.begin(), by_frequency_.end(), 0);
  std::stable_sort(by_frequency_.begin(), by_frequency_.end(),
                   [this](ElementId a, ElementId b) {
                     return frequency_[a] > frequency_[b];
                   });
  // Drop zero-frequency tail so the buffer never wastes bits on unseen ids.
  while (!by_frequency_.empty() &&
         frequency_[by_frequency_.back()] == 0) {
    by_frequency_.pop_back();
  }

  prefix_freq_.resize(by_frequency_.size() + 1, 0);
  prefix_freq_sq_.resize(by_frequency_.size() + 1, 0.0);
  for (size_t i = 0; i < by_frequency_.size(); ++i) {
    const double f = static_cast<double>(frequency_[by_frequency_[i]]);
    prefix_freq_[i + 1] = prefix_freq_[i] + frequency_[by_frequency_[i]];
    prefix_freq_sq_[i + 1] = prefix_freq_sq_[i] + f * f;
  }
  freq_ready_ = true;
}

uint64_t FingerprintRecords(const std::vector<Record>& records) {
  // Order-dependent chain over record boundaries and element ids; two
  // datasets collide only with ~2^-64 probability, which is enough to catch
  // a snapshot being re-bound to the wrong dataset.
  uint64_t h = SplitMix64(0x6462736574ULL ^ records.size());
  for (const Record& r : records) {
    h = Mix64(h ^ SplitMix64(r.size()));
    for (ElementId e : r) h = Mix64(h ^ e);
  }
  return h;
}

uint64_t Dataset::Fingerprint() const {
  if (!fingerprint_ready_) {
    fingerprint_ = FingerprintRecords(records_);
    fingerprint_ready_ = true;
  }
  return fingerprint_;
}

uint64_t Dataset::TopFrequencySum(size_t r) const {
  EnsureFrequencyTables();
  r = std::min(r, by_frequency_.size());
  return prefix_freq_[r];
}

double Dataset::FrequencySecondMoment() const {
  if (total_elements_ == 0) return 0.0;
  EnsureFrequencyTables();
  const double n2 = static_cast<double>(total_elements_) *
                    static_cast<double>(total_elements_);
  return prefix_freq_sq_.back() / n2;
}

double Dataset::TopFrequencySecondMoment(size_t r) const {
  if (total_elements_ == 0) return 0.0;
  EnsureFrequencyTables();
  r = std::min(r, by_frequency_.size());
  const double n2 = static_cast<double>(total_elements_) *
                    static_cast<double>(total_elements_);
  return prefix_freq_sq_[r] / n2;
}

const DatasetStats& Dataset::stats() const {
  if (stats_ready_) return stats_;
  EnsureFrequencyTables();
  DatasetStats s;
  s.num_records = records_.size();
  s.num_distinct = num_distinct_;
  s.total_elements = total_elements_;
  if (!records_.empty()) {
    s.min_record_size = records_[0].size();
    s.max_record_size = records_[0].size();
    for (const Record& r : records_) {
      s.min_record_size = std::min(s.min_record_size, r.size());
      s.max_record_size = std::max(s.max_record_size, r.size());
    }
    s.avg_record_size = static_cast<double>(total_elements_) /
                        static_cast<double>(records_.size());
  }
  // α1: fit over element frequencies; α2: fit over record sizes.
  std::vector<uint64_t> freqs;
  freqs.reserve(num_distinct_);
  for (uint64_t f : frequency_) {
    if (f > 0) freqs.push_back(f);
  }
  s.alpha_element_freq = FitPowerLawExponent(freqs, 1);
  std::vector<uint64_t> sizes;
  sizes.reserve(records_.size());
  for (const Record& r : records_) sizes.push_back(r.size());
  const uint64_t size_xmin = s.min_record_size > 0 ? s.min_record_size : 1;
  s.alpha_record_size = FitPowerLawExponent(sizes, size_xmin);
  stats_ = s;
  stats_ready_ = true;
  return stats_;
}

}  // namespace gbkmv
