// Dataset: an immutable collection of records plus the global statistics the
// GB-KMV machinery needs (element frequencies, frequency ranking, total
// element count N, power-law exponents).

#ifndef GBKMV_DATA_DATASET_H_
#define GBKMV_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/record.h"

namespace gbkmv {

namespace io {
class Reader;
class Writer;
}  // namespace io

// Summary statistics in the shape of the paper's Table II.
struct DatasetStats {
  size_t num_records = 0;         // m
  size_t num_distinct = 0;        // n (elements with frequency > 0)
  uint64_t total_elements = 0;    // N = Σ |X_i|
  double avg_record_size = 0.0;
  size_t min_record_size = 0;
  size_t max_record_size = 0;
  double alpha_element_freq = 0.0;  // α1 (MLE fit)
  double alpha_record_size = 0.0;   // α2 (MLE fit)
};

class Dataset {
 public:
  Dataset() = default;

  // Takes ownership of `records`; every record must be normalised
  // (sorted unique) — validated here, `InvalidArgument` otherwise. The
  // frequency statistics are derived lazily on first use (see below).
  static Result<Dataset> Create(std::vector<Record> records,
                                std::string name = "dataset");

  // Like Create but skips the per-record normalisation check: for callers
  // that assemble records from sources that are themselves normalised
  // datasets (e.g. the compaction path gathering a union of shard
  // datasets), where re-validating every element is pure overhead. Feeding
  // it an unnormalised record is undefined behaviour downstream — when in
  // doubt, use Create.
  static Result<Dataset> CreateFromNormalized(std::vector<Record> records,
                                              std::string name = "dataset");

  const std::string& name() const { return name_; }
  size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  const Record& record(size_t i) const { return records_[i]; }
  const std::vector<Record>& records() const { return records_; }

  // Total number of element occurrences, N = Σ|X_i|.
  uint64_t total_elements() const { return total_elements_; }

  // The frequency accessors below derive their tables on first use (the
  // element-frequency count plus the by-frequency sort are the dominant
  // cost of dataset construction, and index builds that reuse a pinned
  // sketcher — promotion, compaction merges — never need them). Like
  // stats() and Fingerprint(), the first access is not thread-safe:
  // builders derive before an index is published to query threads.

  // Largest element id + 1 (ids are dense but may have gaps with freq 0).
  size_t universe_size() const {
    EnsureFrequencyTables();
    return frequency_.size();
  }

  // Number of elements with frequency > 0.
  size_t num_distinct() const {
    EnsureFrequencyTables();
    return num_distinct_;
  }

  // Frequency of element `e` (0 for unseen ids).
  uint64_t frequency(ElementId e) const {
    EnsureFrequencyTables();
    return e < frequency_.size() ? frequency_[e] : 0;
  }
  const std::vector<uint64_t>& frequencies() const {
    EnsureFrequencyTables();
    return frequency_;
  }

  // Element ids sorted by decreasing frequency (ties by id); the first r
  // entries are the GB-KMV buffer universe E_H.
  const std::vector<ElementId>& elements_by_frequency() const {
    EnsureFrequencyTables();
    return by_frequency_;
  }

  // Σ of the top-r frequencies (N1 in §IV-C6). r is clamped to num_distinct.
  uint64_t TopFrequencySum(size_t r) const;

  // Σ f_i² over *all* elements divided by N² (fn2 in the paper's analysis).
  double FrequencySecondMoment() const;

  // Σ f_i² over the top-r elements divided by N² (fr2).
  double TopFrequencySecondMoment(size_t r) const;

  // Full Table II-style stats (fits power-law exponents on demand; cached).
  const DatasetStats& stats() const;

  // Order-dependent 64-bit content hash of the records (name excluded).
  // Snapshots of derived structures store it so a reloaded index can verify
  // it is being re-bound to the same dataset it was built from. Computed
  // once and cached (the dataset is immutable after Create).
  uint64_t Fingerprint() const;

  // Binary snapshot serialization (src/io). SaveTo writes name + records;
  // LoadFrom re-derives the statistics through Create, so a loaded dataset
  // is indistinguishable from a freshly created one. Defined in
  // io/persist_data.cc.
  void SaveTo(io::Writer* out) const;
  static Result<Dataset> LoadFrom(io::Reader* in);
  Status Save(const std::string& path) const;
  static Result<Dataset> Load(const std::string& path);

 private:
  // Counts elements and sorts the universe by frequency; no-op once done.
  void EnsureFrequencyTables() const;

  std::string name_;
  std::vector<Record> records_;
  // Lazily derived (EnsureFrequencyTables); mutable for the same
  // compute-once caching reason as stats_ and fingerprint_.
  mutable std::vector<uint64_t> frequency_;
  mutable std::vector<ElementId> by_frequency_;
  mutable std::vector<uint64_t> prefix_freq_;   // prefix sums over by_frequency_.
  mutable std::vector<double> prefix_freq_sq_;  // prefix sums of f².
  mutable size_t num_distinct_ = 0;
  mutable bool freq_ready_ = false;
  uint64_t total_elements_ = 0;
  mutable DatasetStats stats_;
  mutable bool stats_ready_ = false;
  mutable uint64_t fingerprint_ = 0;
  mutable bool fingerprint_ready_ = false;
};

// The fingerprint of a raw record sequence (what Dataset::Fingerprint
// caches); used by self-contained indexes that own their records directly.
uint64_t FingerprintRecords(const std::vector<Record>& records);

}  // namespace gbkmv

#endif  // GBKMV_DATA_DATASET_H_
