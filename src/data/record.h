// Record: a set of dictionary-encoded elements.
//
// A record is stored as a sorted vector of unique uint32 element ids, which
// makes exact intersections/unions linear merges and keeps the memory layout
// flat. `MakeRecord` normalises arbitrary input (sorts + dedups).

#ifndef GBKMV_DATA_RECORD_H_
#define GBKMV_DATA_RECORD_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gbkmv {

using ElementId = uint32_t;

// Sorted, duplicate-free element ids.
using Record = std::vector<ElementId>;

// Normalises `elements` into a Record (sorted unique).
Record MakeRecord(std::vector<ElementId> elements);

// True if `r` is sorted and duplicate-free.
bool IsNormalized(const Record& r);

// Exact |a ∩ b| by linear merge.
size_t IntersectSize(const Record& a, const Record& b);

// Exact |a ∪ b|.
size_t UnionSize(const Record& a, const Record& b);

// Exact Jaccard similarity |a∩b| / |a∪b|; 0 when both are empty.
double JaccardSimilarity(const Record& a, const Record& b);

// Exact containment similarity C(q, x) = |q∩x| / |q| (Definition 2);
// 0 when q is empty.
double ContainmentSimilarity(const Record& q, const Record& x);

// True iff `a` contains `element` (binary search).
bool Contains(const Record& a, ElementId element);

}  // namespace gbkmv

#endif  // GBKMV_DATA_RECORD_H_
