// Scaled synthetic proxies for the seven real datasets of Table II.
//
// The real datasets (NETFLIX, DELIC, COD, ENRON, REUTERS, WEBSPAM, WDC) are
// not redistributable / not available offline, so each is replaced by a
// synthetic dataset matched to its published characteristics: the power-law
// exponents α1 (element frequency) and α2 (record size) from Table II, and a
// record count / average length / universe scaled down uniformly so that each
// experiment harness finishes in seconds on one machine. The paper's analysis
// (§IV-C) models a dataset only through (m, n, N, α1, α2), so matched-moment
// proxies exercise the same accuracy regimes. See DESIGN.md §4.

#ifndef GBKMV_DATA_PROXIES_H_
#define GBKMV_DATA_PROXIES_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/synthetic.h"

namespace gbkmv {

enum class PaperDataset {
  kNetflix,
  kDelicious,
  kCanadianOpenData,
  kEnron,
  kReuters,
  kWebspam,
  kWdcWebTable,
};

// All seven, in the order of Table II.
const std::vector<PaperDataset>& AllPaperDatasets();

// Table II abbreviation ("NETFLIX", "DELIC", ...).
std::string PaperDatasetName(PaperDataset d);

// The published characteristics from Table II (for documentation output).
struct PublishedStats {
  size_t num_records;
  double avg_length;
  size_t num_distinct;
  double alpha1;  // element frequency exponent
  double alpha2;  // record size exponent
};
PublishedStats PaperDatasetPublishedStats(PaperDataset d);

// Synthetic generator configuration for the proxy. `scale` multiplies the
// record count (1.0 = default laptop-scale proxy).
SyntheticConfig ProxyConfig(PaperDataset d, double scale = 1.0);

// Generates the proxy dataset (deterministic per dataset).
Result<Dataset> GenerateProxy(PaperDataset d, double scale = 1.0);

}  // namespace gbkmv

#endif  // GBKMV_DATA_PROXIES_H_
