#include "data/dataset_io.h"

#include <fstream>
#include <sstream>

namespace gbkmv {

Result<Dataset> LoadDataset(const std::string& path, size_t min_record_size,
                            const std::string& name) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open " + path);
  }
  std::vector<Record> records;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    std::vector<ElementId> elems;
    long long value = 0;
    while (ss >> value) {
      if (value < 0 || value > static_cast<long long>(~ElementId{0})) {
        return Status::InvalidArgument("element id out of range at line " +
                                       std::to_string(line_no));
      }
      elems.push_back(static_cast<ElementId>(value));
    }
    if (!ss.eof()) {
      return Status::InvalidArgument("non-integer token at line " +
                                     std::to_string(line_no));
    }
    Record r = MakeRecord(std::move(elems));
    if (r.size() >= min_record_size) records.push_back(std::move(r));
  }
  return Dataset::Create(std::move(records),
                         name.empty() ? path : name);
}

Status SaveDataset(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  for (const Record& r : dataset.records()) {
    for (size_t i = 0; i < r.size(); ++i) {
      if (i) out << ' ';
      out << r[i];
    }
    out << '\n';
  }
  if (!out) {
    return Status::IOError("write failed for " + path);
  }
  return Status::OK();
}

}  // namespace gbkmv
