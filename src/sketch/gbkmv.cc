#include "sketch/gbkmv.h"

#include <algorithm>

namespace gbkmv {

Result<GbKmvSketcher> GbKmvSketcher::Create(const Dataset& dataset,
                                            const GbKmvOptions& options) {
  if (options.budget_units == 0) {
    return Status::InvalidArgument("budget_units must be positive");
  }
  const size_t r = options.buffer_bits;
  if (r > dataset.elements_by_frequency().size()) {
    return Status::InvalidArgument(
        "buffer_bits exceeds the number of distinct elements");
  }
  const uint64_t buffer_cost =
      static_cast<uint64_t>(dataset.size()) * ((r + 31) / 32);
  if (buffer_cost > options.budget_units) {
    return Status::InvalidArgument(
        "buffer cost m*r/32 exceeds the total budget");
  }

  GbKmvSketcher sketcher;
  sketcher.options_ = options;
  sketcher.buffer_elements_.assign(dataset.elements_by_frequency().begin(),
                                   dataset.elements_by_frequency().begin() + r);
  sketcher.element_to_bit_.assign(dataset.universe_size(), -1);
  for (size_t bit = 0; bit < sketcher.buffer_elements_.size(); ++bit) {
    sketcher.element_to_bit_[sketcher.buffer_elements_[bit]] =
        static_cast<int32_t>(bit);
  }

  std::vector<bool> excluded(dataset.universe_size(), false);
  for (ElementId e : sketcher.buffer_elements_) excluded[e] = true;
  const uint64_t gkmv_budget = options.budget_units - buffer_cost;
  sketcher.global_threshold_ = ComputeGlobalThresholdExcluding(
      dataset, gkmv_budget, excluded, options.seed);
  return sketcher;
}

GbKmvSketch GbKmvSketcher::Sketch(const Record& record) const {
  GbKmvSketch sketch;
  sketch.buffer = Bitmap(options_.buffer_bits);
  // Buffered elements go to the bitmap; everything else to the G-KMV part.
  Record non_buffered;
  non_buffered.reserve(record.size());
  for (ElementId e : record) {
    const int32_t bit = e < element_to_bit_.size() ? element_to_bit_[e] : -1;
    if (bit >= 0) {
      sketch.buffer.Set(static_cast<size_t>(bit));
    } else {
      non_buffered.push_back(e);
    }
  }
  sketch.gkmv =
      GkmvSketch::Build(non_buffered, global_threshold_, options_.seed);
  return sketch;
}

GbKmvPairEstimate GbKmvSketcher::EstimatePair(const GbKmvSketch& q,
                                              const GbKmvSketch& x) {
  GbKmvPairEstimate out;
  out.buffer_intersect = Bitmap::IntersectCount(q.buffer, x.buffer);
  out.gkmv = EstimateGkmvPair(q.gkmv, x.gkmv);
  out.intersection_size =
      static_cast<double>(out.buffer_intersect) + out.gkmv.intersection_size;
  return out;
}

double GbKmvSketcher::EstimateContainment(const GbKmvSketch& q,
                                          const GbKmvSketch& x,
                                          size_t query_size) {
  if (query_size == 0) return 0.0;
  return EstimatePair(q, x).intersection_size /
         static_cast<double>(query_size);
}

}  // namespace gbkmv
