#include "sketch/cost_model.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/power_law.h"
#include "common/random.h"
#include "common/status.h"
#include "sketch/kmv.h"

namespace gbkmv {

namespace {

// Variance of the containment estimator for one ordered pair (query size
// x_j, record size x_l) given the model inputs. Returns +inf when the model
// breaks down (k <= 2), which simply means "no useful sketch at this size".
double PairVariance(double xj, double xl, double tau, double fr, double fn2,
                    double fr2) {
  const double f_rem = std::max(fn2 - fr2, 0.0);
  const double d_inter = xj * xl * f_rem;
  const double d_union = std::max((xj + xl) * (1.0 - fr) - d_inter, 1.0);
  const double k = tau * (xj + xl) * (1.0 - fr) - tau * tau * xj * xl * f_rem;
  if (k <= 2.0) return std::numeric_limits<double>::infinity();
  const double var_inter = KmvIntersectionVariance(d_inter, d_union, k);
  return var_inter / (xj * xj);
}

}  // namespace

double EstimateGbKmvVariance(const Dataset& dataset, uint64_t budget_units,
                             size_t buffer_bits,
                             const CostModelOptions& options) {
  GBKMV_CHECK(!dataset.empty());
  const double n_total = static_cast<double>(dataset.total_elements());
  if (n_total <= 0) return std::numeric_limits<double>::infinity();

  const uint64_t buffer_cost =
      static_cast<uint64_t>(dataset.size()) * ((buffer_bits + 31) / 32);
  if (buffer_cost >= budget_units) {
    return std::numeric_limits<double>::infinity();
  }
  const double n1 = static_cast<double>(dataset.TopFrequencySum(buffer_bits));
  const double remaining_mass = n_total - n1;
  if (remaining_mass <= 0) {
    // Everything is buffered: the estimate is exact.
    return 0.0;
  }
  const double tau =
      static_cast<double>(budget_units - buffer_cost) / remaining_mass;
  const double fr = n1 / n_total;
  const double fn2 = dataset.FrequencySecondMoment();
  const double fr2 = dataset.TopFrequencySecondMoment(buffer_bits);

  // Pair-average over sampled (query, record) pairs; queries are drawn from
  // the records themselves (the paper's query model).
  Rng rng(options.seed);
  double sum = 0.0;
  size_t finite = 0;
  const size_t samples = std::max<size_t>(1, options.pair_samples);
  for (size_t s = 0; s < samples; ++s) {
    const size_t j = static_cast<size_t>(rng.NextBounded(dataset.size()));
    const size_t l = static_cast<size_t>(rng.NextBounded(dataset.size()));
    const double xj = static_cast<double>(dataset.record(j).size());
    const double xl = static_cast<double>(dataset.record(l).size());
    if (xj <= 0) continue;
    const double v = PairVariance(xj, xl, std::min(tau, 1.0), fr, fn2, fr2);
    if (std::isfinite(v)) {
      sum += v;
      ++finite;
    }
  }
  if (finite == 0) return std::numeric_limits<double>::infinity();
  return sum / static_cast<double>(finite);
}

double PowerLawGbKmvVariance(size_t buffer_bits, double alpha1, double alpha2,
                             uint64_t budget_units, size_t num_records,
                             size_t num_distinct, uint64_t total_elements,
                             size_t min_size, size_t max_size) {
  GBKMV_CHECK(num_records > 0 && num_distinct > 0 && total_elements > 0);
  GBKMV_CHECK(min_size >= 1 && min_size <= max_size);
  const size_t r = std::min(buffer_bits, num_distinct);
  const double n_total = static_cast<double>(total_elements);

  // Element frequency model: f_i = N · i^{-α1} / H_d(α1).
  const double h_all = GeneralizedHarmonic(num_distinct, alpha1);
  const double h_r = r > 0 ? GeneralizedHarmonicRange(1, r, alpha1) : 0.0;
  const double h_all_2 = GeneralizedHarmonic(num_distinct, 2.0 * alpha1);
  const double h_r_2 = r > 0 ? GeneralizedHarmonicRange(1, r, 2.0 * alpha1) : 0.0;
  const double fr = h_r / h_all;
  const double fn2 = h_all_2 / (h_all * h_all);
  const double fr2 = h_r_2 / (h_all * h_all);

  const uint64_t buffer_cost =
      static_cast<uint64_t>(num_records) * ((r + 31) / 32);
  if (buffer_cost >= budget_units) {
    return std::numeric_limits<double>::infinity();
  }
  const double remaining_mass = n_total * (1.0 - fr);
  if (remaining_mass <= 0) return 0.0;
  const double tau = std::min(
      static_cast<double>(budget_units - buffer_cost) / remaining_mass, 1.0);

  // Record-size model: pair-average by quadrature over the size power law.
  const ZipfDistribution size_dist(min_size, max_size, alpha2);
  // Quadrature nodes: geometric grid over the support weighted by the pmf
  // summed within each cell (exact for the discrete distribution).
  std::vector<std::pair<double, double>> nodes;  // (size, probability mass)
  uint64_t lo = min_size;
  while (lo <= max_size) {
    uint64_t hi = std::min<uint64_t>(max_size, std::max(lo, lo * 5 / 4));
    double mass = 0.0;
    double weighted = 0.0;
    for (uint64_t x = lo; x <= hi; ++x) {
      const double p = size_dist.Pmf(x);
      mass += p;
      weighted += p * static_cast<double>(x);
    }
    if (mass > 0) nodes.emplace_back(weighted / mass, mass);
    lo = hi + 1;
  }

  double total = 0.0;
  double total_mass = 0.0;
  for (const auto& [xj, pj] : nodes) {
    for (const auto& [xl, pl] : nodes) {
      const double v = PairVariance(xj, xl, tau, fr, fn2, fr2);
      if (std::isfinite(v)) {
        total += pj * pl * v;
        total_mass += pj * pl;
      }
    }
  }
  if (total_mass <= 0) return std::numeric_limits<double>::infinity();
  return total / total_mass;
}

size_t ChooseBufferSize(const Dataset& dataset, uint64_t budget_units,
                        const CostModelOptions& options) {
  const size_t step = std::max<size_t>(1, options.step_bits);
  size_t max_r = options.max_buffer_bits;
  const size_t distinct = dataset.elements_by_frequency().size();
  if (max_r == 0 || max_r > distinct) max_r = distinct;
  // The buffer cannot consume the whole budget.
  const uint64_t per_record_word_cost = dataset.size();
  if (per_record_word_cost > 0) {
    const size_t budget_limit = static_cast<size_t>(
        32 * (budget_units / std::max<uint64_t>(per_record_word_cost, 1)));
    max_r = std::min(max_r, budget_limit);
  }

  const double base = EstimateGbKmvVariance(dataset, budget_units, 0, options);
  size_t best_r = 0;
  double best_v = base;
  for (size_t r = step; r <= max_r; r += step) {
    const double v = EstimateGbKmvVariance(dataset, budget_units, r, options);
    // V∆ < 0 constraint: only accept r that strictly improves on G-KMV.
    if (v < best_v) {
      best_v = v;
      best_r = r;
    }
  }
  return best_r;
}

}  // namespace gbkmv
