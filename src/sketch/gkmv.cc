#include "sketch/gkmv.h"

#include <algorithm>

#include "common/hash.h"
#include "common/status.h"

namespace gbkmv {

GkmvSketch GkmvSketch::Build(const Record& record, uint64_t threshold,
                             uint64_t seed) {
  GkmvSketch sketch;
  sketch.threshold_ = threshold;
  for (ElementId e : record) {
    const uint64_t h = HashElement(e, seed);
    if (h <= threshold) sketch.values_.push_back(h);
  }
  std::sort(sketch.values_.begin(), sketch.values_.end());
  return sketch;
}

GkmvPairEstimate EstimateGkmvPair(const GkmvSketch& q, const GkmvSketch& x) {
  GkmvPairEstimate out;
  const std::vector<uint64_t>& a = q.values();
  const std::vector<uint64_t>& b = x.values();
  size_t i = 0, j = 0, common = 0, uni = 0;
  uint64_t max_hash = 0;
  while (i < a.size() || j < b.size()) {
    uint64_t v = 0;
    if (i < a.size() && (j >= b.size() || a[i] < b[j])) {
      v = a[i++];
    } else if (j < b.size() && (i >= a.size() || b[j] < a[i])) {
      v = b[j++];
    } else {
      v = a[i];
      ++i;
      ++j;
      ++common;
    }
    ++uni;
    max_hash = v;  // Merge emits ascending values; the last one is U(k).
  }
  out.k = uni;
  out.k_intersect = common;
  out.u_k = HashToUnit(max_hash);
  if (uni == 0) return out;
  // With the maximal threshold every element hash is kept and the sketch is
  // the full record: counts are exact.
  if (q.threshold() == ~0ULL && x.threshold() == ~0ULL) {
    out.intersection_size = static_cast<double>(common);
    out.union_size = static_cast<double>(uni);
    return out;
  }
  if (uni < 2 || out.u_k <= 0.0) return out;
  const double kd = static_cast<double>(uni);
  out.union_size = (kd - 1.0) / out.u_k;
  out.intersection_size =
      static_cast<double>(common) / kd * (kd - 1.0) / out.u_k;
  return out;
}

double EstimateContainmentGkmv(const GkmvSketch& query_sketch,
                               const GkmvSketch& record_sketch,
                               size_t query_size) {
  if (query_size == 0) return 0.0;
  const GkmvPairEstimate est = EstimateGkmvPair(query_sketch, record_sketch);
  return est.intersection_size / static_cast<double>(query_size);
}

GkmvPairEstimate EstimateGkmvPairThreshold(const GkmvSketch& q,
                                           const GkmvSketch& x) {
  GkmvPairEstimate out = EstimateGkmvPair(q, x);
  const double tau = HashToUnit(std::min(q.threshold(), x.threshold()));
  if (tau <= 0.0) return out;
  out.union_size = static_cast<double>(out.k) / tau;
  out.intersection_size = static_cast<double>(out.k_intersect) / tau;
  return out;
}

namespace {

// Shared implementation: τ is the largest hash value such that the total
// number of kept occurrences (element frequency counted per record) stays
// within the budget.
uint64_t SelectThreshold(const Dataset& dataset, uint64_t budget_units,
                         const std::vector<bool>* is_excluded, uint64_t seed) {
  if (budget_units == 0) return 0;
  std::vector<std::pair<uint64_t, uint64_t>> hash_freq;  // (hash, frequency)
  hash_freq.reserve(dataset.num_distinct());
  const std::vector<uint64_t>& freq = dataset.frequencies();
  for (size_t e = 0; e < freq.size(); ++e) {
    if (freq[e] == 0) continue;
    if (is_excluded != nullptr && (*is_excluded)[e]) continue;
    hash_freq.emplace_back(HashElement(static_cast<ElementId>(e), seed),
                           freq[e]);
  }
  std::sort(hash_freq.begin(), hash_freq.end());
  uint64_t total = 0;
  for (const auto& [hash, f] : hash_freq) {
    (void)hash;
    total += f;
  }
  if (total <= budget_units) return ~0ULL;  // Budget covers everything.
  uint64_t used = 0;
  uint64_t threshold = 0;
  for (const auto& [hash, f] : hash_freq) {
    if (used + f > budget_units) break;
    used += f;
    threshold = hash;
  }
  return threshold;
}

}  // namespace

uint64_t ComputeGlobalThreshold(const Dataset& dataset, uint64_t budget_units,
                                uint64_t seed) {
  return SelectThreshold(dataset, budget_units, nullptr, seed);
}

uint64_t ComputeGlobalThresholdExcluding(const Dataset& dataset,
                                         uint64_t budget_units,
                                         const std::vector<bool>& is_excluded,
                                         uint64_t seed) {
  GBKMV_CHECK(is_excluded.size() >= dataset.universe_size());
  return SelectThreshold(dataset, budget_units, &is_excluded, seed);
}

}  // namespace gbkmv
