#include "sketch/kmv.h"

#include <algorithm>

#include "common/hash.h"
#include "common/status.h"

namespace gbkmv {

KmvSketch KmvSketch::Build(const Record& record, size_t k, uint64_t seed) {
  KmvSketch sketch;
  if (k == 0) {
    sketch.exact_ = record.empty();
    return sketch;
  }
  std::vector<uint64_t> hashes;
  hashes.reserve(record.size());
  for (ElementId e : record) hashes.push_back(HashElement(e, seed));
  std::sort(hashes.begin(), hashes.end());
  // Element ids are unique within a record, and a 64-bit hash collision
  // within one record is negligible (the no-collision assumption of the
  // estimator); keep the k smallest values.
  if (hashes.size() > k) {
    hashes.resize(k);
    sketch.exact_ = false;
  } else {
    sketch.exact_ = true;
  }
  sketch.values_ = std::move(hashes);
  return sketch;
}

double KmvSketch::EstimateDistinct() const {
  if (exact_ || values_.empty()) return static_cast<double>(values_.size());
  const double u_k = HashToUnit(values_.back());
  if (u_k <= 0.0) return static_cast<double>(values_.size());
  return (static_cast<double>(values_.size()) - 1.0) / u_k;
}

KmvPairEstimate EstimateKmvPair(const KmvSketch& x, const KmvSketch& y) {
  KmvPairEstimate out;
  const std::vector<uint64_t>& a = x.values();
  const std::vector<uint64_t>& b = y.values();
  if (a.empty() || b.empty()) {
    // One side is empty: if that side is exact, the true intersection is 0;
    // if not, there is no information — return 0 either way.
    out.exact = x.exact() && y.exact();
    return out;
  }

  const size_t k = std::min(a.size(), b.size());
  out.k = k;

  // Merge until k union values are consumed, counting values present in both.
  size_t i = 0, j = 0, taken = 0, common = 0;
  uint64_t last = 0;
  while (taken < k && (i < a.size() || j < b.size())) {
    if (i < a.size() && (j >= b.size() || a[i] < b[j])) {
      last = a[i++];
    } else if (j < b.size() && (i >= a.size() || b[j] < a[i])) {
      last = b[j++];
    } else {  // equal values -> same element on both sides
      last = a[i];
      ++i;
      ++j;
      ++common;
    }
    ++taken;
  }
  out.k_intersect = common;
  out.u_k = HashToUnit(last);

  if (x.exact() && y.exact()) {
    // Both synopses are complete hash sets: counts are exact.
    size_t exact_common = 0;
    size_t ii = 0, jj = 0;
    while (ii < a.size() && jj < b.size()) {
      if (a[ii] < b[jj]) {
        ++ii;
      } else if (a[ii] > b[jj]) {
        ++jj;
      } else {
        ++exact_common;
        ++ii;
        ++jj;
      }
    }
    out.exact = true;
    out.intersection_size = static_cast<double>(exact_common);
    out.union_size = static_cast<double>(a.size() + b.size() - exact_common);
    return out;
  }

  if (k < 2 || out.u_k <= 0.0) {
    return out;  // Not enough signal; estimates stay 0.
  }
  const double kd = static_cast<double>(k);
  out.union_size = (kd - 1.0) / out.u_k;
  out.intersection_size =
      static_cast<double>(common) / kd * (kd - 1.0) / out.u_k;
  return out;
}

double EstimateContainmentKmv(const KmvSketch& query_sketch,
                              const KmvSketch& record_sketch,
                              size_t query_size) {
  if (query_size == 0) return 0.0;
  const KmvPairEstimate est = EstimateKmvPair(query_sketch, record_sketch);
  return est.intersection_size / static_cast<double>(query_size);
}

double KmvIntersectionVariance(double d_intersect, double d_union, double k) {
  if (k <= 2.0) return 0.0;
  return d_intersect *
         (k * d_union - k * k - d_union + k + d_intersect) /
         (k * (k - 2.0));
}

}  // namespace gbkmv
