#include "sketch/parallel_build.h"

namespace gbkmv {

std::vector<GbKmvSketch> BuildSketchesParallel(const Dataset& dataset,
                                               const GbKmvSketcher& sketcher,
                                               ThreadPool* pool) {
  return ParallelMapIndex<GbKmvSketch>(pool, dataset.size(), [&](size_t i) {
    return sketcher.Sketch(dataset.record(i));
  });
}

std::vector<KmvSketch> BuildKmvSketchesParallel(const Dataset& dataset,
                                                size_t k, uint64_t seed,
                                                ThreadPool* pool) {
  return ParallelMapIndex<KmvSketch>(pool, dataset.size(), [&](size_t i) {
    return KmvSketch::Build(dataset.record(i), k, seed);
  });
}

std::vector<GkmvSketch> BuildGkmvSketchesParallel(const Dataset& dataset,
                                                  uint64_t global_threshold,
                                                  uint64_t seed,
                                                  ThreadPool* pool) {
  return ParallelMapIndex<GkmvSketch>(pool, dataset.size(), [&](size_t i) {
    return GkmvSketch::Build(dataset.record(i), global_threshold, seed);
  });
}

std::vector<MinHashSignature> BuildSketchesParallel(const Dataset& dataset,
                                                    const HashFamily& family,
                                                    ThreadPool* pool) {
  return ParallelMapIndex<MinHashSignature>(pool, dataset.size(),
                                            [&](size_t i) {
    return MinHashSignature::Build(dataset.record(i), family);
  });
}

}  // namespace gbkmv
