// Parallel sketch construction over a Dataset (tentpole of the parallel
// execution subsystem): one overload of BuildSketchesParallel per sketch
// family. Every record's sketch is a pure function of (record, sketch
// parameters), so a ParallelFor that writes each result into its pre-sized
// slot yields output byte-identical to the sequential loop for any thread
// count.
//
// All entry points accept a nullable ThreadPool: pool == nullptr (or a
// single-worker pool) runs sequentially, so callers can thread one optional
// pool through their build path without branching.

#ifndef GBKMV_SKETCH_PARALLEL_BUILD_H_
#define GBKMV_SKETCH_PARALLEL_BUILD_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "data/dataset.h"
#include "sketch/gbkmv.h"
#include "sketch/gkmv.h"
#include "sketch/kmv.h"
#include "sketch/minhash.h"

namespace gbkmv {

// out[i] = fn(i) for i in [0, n); deterministic for any pool size. `fn` must
// be safe to call concurrently for distinct i. The default grain targets a
// few chunks per worker so uneven record sizes still balance.
template <typename T, typename Fn>
std::vector<T> ParallelMapIndex(ThreadPool* pool, size_t n, Fn&& fn) {
  std::vector<T> out(n);
  if (pool == nullptr || pool->num_threads() == 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) out[i] = fn(i);
    return out;
  }
  const size_t grain =
      std::max<size_t>(1, n / (8 * pool->num_threads()));
  pool->ParallelFor(0, n, grain,
                    [&](size_t begin, size_t end, size_t /*chunk*/) {
                      for (size_t i = begin; i < end; ++i) out[i] = fn(i);
                    });
  return out;
}

// GB-KMV: one GbKmvSketch per record under a prepared sketcher.
std::vector<GbKmvSketch> BuildSketchesParallel(const Dataset& dataset,
                                               const GbKmvSketcher& sketcher,
                                               ThreadPool* pool);

// KMV: fixed capacity k per record (Theorem-1 allocation). Named (not an
// overload): k and the G-KMV threshold are both integral, so overloads would
// be ambiguous.
std::vector<KmvSketch> BuildKmvSketchesParallel(const Dataset& dataset,
                                                size_t k, uint64_t seed,
                                                ThreadPool* pool);

// G-KMV: shared global threshold τ.
std::vector<GkmvSketch> BuildGkmvSketchesParallel(const Dataset& dataset,
                                                  uint64_t global_threshold,
                                                  uint64_t seed,
                                                  ThreadPool* pool);

// MinHash: one signature per record under a shared hash family.
std::vector<MinHashSignature> BuildSketchesParallel(const Dataset& dataset,
                                                    const HashFamily& family,
                                                    ThreadPool* pool);

}  // namespace gbkmv

#endif  // GBKMV_SKETCH_PARALLEL_BUILD_H_
