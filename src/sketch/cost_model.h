// Buffer-size cost model (§IV-C6).
//
// The variance of the GB-KMV containment estimator is, per record pair
// (X_j, X_l) with q = x_j (Eq. 32 applied to the G-KMV remainder):
//
//   Var[Ĉ] = D∩(kD∪ − k² − D∪ + k + D∩) / (k(k−2) · x_j²)
//
// where, under the paper's data model,
//   fr   = Σ_{i<=r} f_i / N          (buffered mass)
//   fn2  = Σ_i f_i² / N²             (frequency second moment)
//   fr2  = Σ_{i<=r} f_i² / N²
//   D∩   = x_j·x_l·(fn2 − fr2)
//   D∪   = (x_j + x_l)(1 − fr) − D∩
//   τ    = (b − m·r/32) / (N − N1)   (remaining budget over remaining mass)
//   k    = τ(x_j + x_l)(1 − fr) − τ²·x_j·x_l·(fn2 − fr2)
//
// `EstimateGbKmvVariance` evaluates this with the *empirical* frequency
// spectrum (prefix moments from the Dataset) averaged over sampled record
// pairs — the numerical procedure the paper uses to pick r. The closed-form
// power-law variant (`PowerLawGbKmvVariance`) instead derives fr/fn2/fr2
// from p1(x) = c1·x^{-α1}, matching the f(r, α1, α2, b) of the paper.
//
// `ChooseBufferSize` grid-searches r ∈ {0, step, 2·step, …} and returns the
// minimiser, subject to the paper's constraint V∆ < 0 (never worse than
// G-KMV, i.e. never worse than r = 0).

#ifndef GBKMV_SKETCH_COST_MODEL_H_
#define GBKMV_SKETCH_COST_MODEL_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"

namespace gbkmv {

struct CostModelOptions {
  // Grid granularity for r (bits). The paper evaluates r = 8, 16, 24, …
  size_t step_bits = 8;
  // Upper bound for the search; 0 means "up to the number of distinct
  // elements and the budget limit".
  size_t max_buffer_bits = 0;
  // Number of record pairs sampled for the pair average.
  size_t pair_samples = 2000;
  uint64_t seed = 7;
};

// Average modelled variance of the GB-KMV containment estimator for buffer
// size `buffer_bits` under `budget_units`, using the dataset's empirical
// frequency spectrum. Returns +inf when the configuration is infeasible
// (buffer cost exceeds the budget or the model's k <= 2).
double EstimateGbKmvVariance(const Dataset& dataset, uint64_t budget_units,
                             size_t buffer_bits,
                             const CostModelOptions& options = {});

// Closed-form variant under pure power-law assumptions: element frequency
// exponent alpha1 over `num_distinct` elements, record sizes power law
// (alpha2) on [min_size, max_size]. Mirrors f(r, α1, α2, b) of §IV-C6.
double PowerLawGbKmvVariance(size_t buffer_bits, double alpha1, double alpha2,
                             uint64_t budget_units, size_t num_records,
                             size_t num_distinct, uint64_t total_elements,
                             size_t min_size, size_t max_size);

// Picks the buffer size minimising EstimateGbKmvVariance over the grid.
// Always returns a feasible r (possibly 0).
size_t ChooseBufferSize(const Dataset& dataset, uint64_t budget_units,
                        const CostModelOptions& options = {});

}  // namespace gbkmv

#endif  // GBKMV_SKETCH_COST_MODEL_H_
