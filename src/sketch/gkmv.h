// G-KMV: KMV with a global hash-value threshold (§IV-A(2)).
//
// Instead of fixing k per record, a single threshold τ is chosen for the
// whole collection and every record keeps all hashes ≤ τ. For any pair this
// makes L = L_Q ∪ L_X a *valid* KMV synopsis of Q ∪ X with
//   k  = |L_Q ∪ L_X|                        (Eq. 24, Theorem 2)
//   K∩ = |L_Q ∩ L_X|
//   D̂∩ = K∩/k · (k−1)/U(k)                  (Eq. 25)
// which is a much larger k than min(k_Q, k_X), hence lower variance
// (Lemma 2 / Theorem 3).

#ifndef GBKMV_SKETCH_GKMV_H_
#define GBKMV_SKETCH_GKMV_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/record.h"
#include "sketch/kmv.h"

namespace gbkmv {

class GkmvSketch {
 public:
  GkmvSketch() = default;

  // Keeps all hashes of `record` that are <= `threshold`.
  static GkmvSketch Build(const Record& record, uint64_t threshold,
                          uint64_t seed = kDefaultSketchSeed);

  // Reassembles a sketch from stored parts (the flat sketch store's
  // per-record hash slice). `values` must be what a Build with `threshold`
  // produced: ascending and all <= threshold.
  static GkmvSketch FromParts(std::vector<uint64_t> values,
                              uint64_t threshold) {
    GkmvSketch sketch;
    sketch.values_ = std::move(values);
    sketch.threshold_ = threshold;
    return sketch;
  }

  const std::vector<uint64_t>& values() const { return values_; }
  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  uint64_t threshold() const { return threshold_; }

  size_t SpaceUnits() const { return values_.size(); }

  // Binary snapshot serialization (src/io). Defined in io/persist_data.cc.
  void SaveTo(io::Writer* out) const;
  static Result<GkmvSketch> LoadFrom(io::Reader* in);
  Status Save(const std::string& path) const;
  static Result<GkmvSketch> Load(const std::string& path);

 private:
  std::vector<uint64_t> values_;
  uint64_t threshold_ = 0;
};

struct GkmvPairEstimate {
  size_t k = 0;            // |L_Q ∪ L_X|
  size_t k_intersect = 0;  // |L_Q ∩ L_X|
  double u_k = 0.0;        // largest hash in the union (unit interval)
  double intersection_size = 0.0;  // D̂∩ (Eq. 25)
  double union_size = 0.0;        // (k−1)/U(k)
};

// Combines two G-KMV sketches built with the same threshold and seed.
GkmvPairEstimate EstimateGkmvPair(const GkmvSketch& q, const GkmvSketch& x);

// Containment Ĉ = D̂∩ / |Q| (Eq. 26).
double EstimateContainmentGkmv(const GkmvSketch& query_sketch,
                               const GkmvSketch& record_sketch,
                               size_t query_size);

// Alternative "threshold" (Bernoulli) estimator for a fixed-τ sketch:
// every hash is kept independently with probability τ, so
//   D̂∩ = K∩ / τ,  D̂∪ = k / τ.
// The paper uses the order-statistics form (Eq. 25); this variant exists
// for the ablation bench that compares the two (they agree to O(1/k), but
// the order-statistics form adapts to the realised U(k) and is what
// Theorem 2 justifies).
GkmvPairEstimate EstimateGkmvPairThreshold(const GkmvSketch& q,
                                           const GkmvSketch& x);

// Chooses the largest τ such that the total sketch size over the whole
// dataset is <= budget_units (one unit per stored hash). Exact: selects the
// budget-th smallest hash over all element occurrences. Returns the maximal
// threshold when the budget covers everything and 0 when budget_units == 0.
uint64_t ComputeGlobalThreshold(const Dataset& dataset, uint64_t budget_units,
                                uint64_t seed = kDefaultSketchSeed);

// Same, but the element occurrences of `excluded` elements (buffer elements
// of GB-KMV) are ignored. `is_excluded[e]` must be valid for all element ids
// in the dataset.
uint64_t ComputeGlobalThresholdExcluding(const Dataset& dataset,
                                         uint64_t budget_units,
                                         const std::vector<bool>& is_excluded,
                                         uint64_t seed = kDefaultSketchSeed);

}  // namespace gbkmv

#endif  // GBKMV_SKETCH_GKMV_H_
