// Classic KMV (k minimum values) sketch of Beyer et al. (SIGMOD 2007) and the
// multiset estimators used in §II-C of the paper.
//
// A KMV sketch of a record keeps the k smallest element hash values under one
// shared hash function. For two sketches L_X, L_Y:
//   k      = min(|L_X|, |L_Y|)                       (Eq. 8)
//   L      = k smallest values of L_X ∪ L_Y
//   U(k)   = k-th smallest value in L (unit interval)
//   D̂∪     = (k−1)/U(k)                              (Eq. 9)
//   K∩     = |{v ∈ L : v ∈ L_X ∩ L_Y}|
//   D̂∩     = K∩/k · (k−1)/U(k)                       (Eq. 10)
// and Var[D̂∩] = D∩(kD∪ − k² − D∪ + k + D∩)/(k(k−2)) (Eq. 11).
//
// When a sketch holds *all* hashes of its record (k ≥ |X|) it is exact and
// the estimators degrade gracefully to exact counts.

#ifndef GBKMV_SKETCH_KMV_H_
#define GBKMV_SKETCH_KMV_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/record.h"

namespace gbkmv {

namespace io {
class Reader;
class Writer;
}  // namespace io

// Shared hash seed: every KMV-family sketch in one index must use the same
// hash function, otherwise matching hash values do not imply matching
// elements.
inline constexpr uint64_t kDefaultSketchSeed = 0x6b6d7620736b6574ULL;

class KmvSketch {
 public:
  KmvSketch() = default;

  // Builds the sketch of `record` with capacity `k` under `seed`.
  static KmvSketch Build(const Record& record, size_t k,
                         uint64_t seed = kDefaultSketchSeed);

  // Sorted ascending hash values (size <= k).
  const std::vector<uint64_t>& values() const { return values_; }
  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  // True if the sketch holds every hash of the record (k >= |X|), making all
  // derived quantities exact.
  bool exact() const { return exact_; }

  // Unbiased distinct-count estimate (k−1)/U(k); exact when exact().
  double EstimateDistinct() const;

  // Space in "element units" (one unit per stored hash), matching the
  // paper's budget accounting.
  size_t SpaceUnits() const { return values_.size(); }

  // Binary snapshot serialization (src/io). Defined in io/persist_data.cc.
  void SaveTo(io::Writer* out) const;
  static Result<KmvSketch> LoadFrom(io::Reader* in);
  Status Save(const std::string& path) const;
  static Result<KmvSketch> Load(const std::string& path);

 private:
  std::vector<uint64_t> values_;
  bool exact_ = false;
};

// Result of a pairwise KMV combination.
struct KmvPairEstimate {
  size_t k = 0;          // min(|L_X|, |L_Y|)
  size_t k_intersect = 0;  // K∩ within the size-k union synopsis
  double u_k = 0.0;      // U(k) on the unit interval
  double union_size = 0.0;      // D̂∪
  double intersection_size = 0.0;  // D̂∩
  bool exact = false;    // both sketches were exact
};

// Combines two sketches per Eqs. 8–10.
KmvPairEstimate EstimateKmvPair(const KmvSketch& x, const KmvSketch& y);

// Containment estimate Ĉ(Q,X) = D̂∩ / |Q| given the true query size.
double EstimateContainmentKmv(const KmvSketch& query_sketch,
                              const KmvSketch& record_sketch,
                              size_t query_size);

// Analytic variance of D̂∩ (Eq. 11); 0 for k <= 2.
double KmvIntersectionVariance(double d_intersect, double d_union, double k);

}  // namespace gbkmv

#endif  // GBKMV_SKETCH_KMV_H_
