// MinHash signatures (Broder 1997) — the substrate of the LSH-E baseline.
//
// A signature keeps, for k independent hash functions, the minimum hash value
// of the record (Eq. 4–5). The collision fraction of two signatures is an
// unbiased Jaccard estimator with variance s(1−s)/k (Eq. 6–7). Containment is
// derived through the similarity transformation of Eq. 12/14.

#ifndef GBKMV_SKETCH_MINHASH_H_
#define GBKMV_SKETCH_MINHASH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/status.h"
#include "data/record.h"

namespace gbkmv {

namespace io {
class Reader;
class Writer;
}  // namespace io

class MinHashSignature {
 public:
  MinHashSignature() = default;

  // Computes the signature of `record` under `family`. Empty records get the
  // all-max signature.
  static MinHashSignature Build(const Record& record, const HashFamily& family);

  size_t size() const { return values_.size(); }
  const std::vector<uint64_t>& values() const { return values_; }
  uint64_t value(size_t i) const { return values_[i]; }

  // Binary snapshot serialization (src/io). Defined in io/persist_data.cc.
  void SaveTo(io::Writer* out) const;
  static Result<MinHashSignature> LoadFrom(io::Reader* in);
  Status Save(const std::string& path) const;
  static Result<MinHashSignature> Load(const std::string& path);

 private:
  std::vector<uint64_t> values_;
};

// Jaccard estimate ŝ = collision fraction (Eq. 5). Signatures must have the
// same size (checked).
double EstimateJaccardMinHash(const MinHashSignature& a,
                              const MinHashSignature& b);

// Containment similarity transformations (Eq. 12).
//   JaccardToContainment: t = (x/q + 1)·s / (1 + s)
//   ContainmentToJaccard: s = t / (x/q + 1 − t)
double JaccardToContainment(double jaccard, size_t query_size,
                            size_t record_size);
double ContainmentToJaccard(double containment, size_t query_size,
                            size_t record_size);

// MinHash-LSH containment estimator t̂ (Eq. 14) from signatures and true
// sizes.
double EstimateContainmentMinHash(const MinHashSignature& query_sig,
                                  const MinHashSignature& record_sig,
                                  size_t query_size, size_t record_size);

}  // namespace gbkmv

#endif  // GBKMV_SKETCH_MINHASH_H_
