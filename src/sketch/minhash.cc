#include "sketch/minhash.h"

#include <limits>

#include "common/status.h"

namespace gbkmv {

MinHashSignature MinHashSignature::Build(const Record& record,
                                         const HashFamily& family) {
  MinHashSignature sig;
  sig.values_.assign(family.size(), std::numeric_limits<uint64_t>::max());
  for (ElementId e : record) {
    for (size_t i = 0; i < family.size(); ++i) {
      const uint64_t h = family.Hash(i, e);
      if (h < sig.values_[i]) sig.values_[i] = h;
    }
  }
  return sig;
}

double EstimateJaccardMinHash(const MinHashSignature& a,
                              const MinHashSignature& b) {
  GBKMV_CHECK(a.size() == b.size());
  if (a.size() == 0) return 0.0;
  size_t collisions = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a.value(i) == b.value(i)) ++collisions;
  }
  return static_cast<double>(collisions) / static_cast<double>(a.size());
}

double JaccardToContainment(double jaccard, size_t query_size,
                            size_t record_size) {
  if (query_size == 0) return 0.0;
  const double ratio =
      static_cast<double>(record_size) / static_cast<double>(query_size);
  return (ratio + 1.0) * jaccard / (1.0 + jaccard);
}

double ContainmentToJaccard(double containment, size_t query_size,
                            size_t record_size) {
  if (query_size == 0) return 0.0;
  const double ratio =
      static_cast<double>(record_size) / static_cast<double>(query_size);
  const double denom = ratio + 1.0 - containment;
  if (denom <= 0.0) return 1.0;
  return containment / denom;
}

double EstimateContainmentMinHash(const MinHashSignature& query_sig,
                                  const MinHashSignature& record_sig,
                                  size_t query_size, size_t record_size) {
  const double s_hat = EstimateJaccardMinHash(query_sig, record_sig);
  return JaccardToContainment(s_hat, query_size, record_size);
}

}  // namespace gbkmv
