// GB-KMV: the paper's primary contribution (§IV-B, Algorithm 1).
//
// A GB-KMV sketch of a record has two parts:
//   * H_X — an r-bit bitmap over the r globally most frequent elements E_H
//     (exact membership of the record in E_H);
//   * L_X — a G-KMV sketch (global threshold τ) over the remaining elements.
// The intersection estimate combines the exact buffer part with the sketched
// part (Eq. 27):  |Q ∩ X|^ = |H_Q ∩ H_X| + D̂∩^{GKMV}.
//
// `GbKmvSketcher` encapsulates the whole construction: it picks the buffer
// universe from the dataset's frequency ranking, charges the buffer r/32
// element units per record (bitmap words), spends the remaining budget on
// the global threshold, and builds sketches for records and queries alike.

#ifndef GBKMV_SKETCH_GBKMV_H_
#define GBKMV_SKETCH_GBKMV_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/bitmap.h"
#include "common/status.h"
#include "data/dataset.h"
#include "sketch/gkmv.h"

namespace gbkmv {

// One record's sketch.
struct GbKmvSketch {
  Bitmap buffer;       // H_X over the buffer universe E_H
  GkmvSketch gkmv;     // L_X over E \ E_H

  // Element units consumed: r/32 for the bitmap + one per stored hash.
  size_t SpaceUnits(size_t buffer_bits) const {
    return (buffer_bits + 31) / 32 + gkmv.SpaceUnits();
  }

  // Binary snapshot serialization (src/io). Defined in io/persist_data.cc.
  void SaveTo(io::Writer* out) const;
  static Result<GbKmvSketch> LoadFrom(io::Reader* in);
  Status Save(const std::string& path) const;
  static Result<GbKmvSketch> Load(const std::string& path);
};

struct GbKmvPairEstimate {
  size_t buffer_intersect = 0;   // |H_Q ∩ H_X| (exact)
  GkmvPairEstimate gkmv;         // sketched remainder
  double intersection_size = 0;  // Eq. 27
};

struct GbKmvOptions {
  // Total space budget in element units (hash value = 1 unit, bitmap =
  // r/32 units per record).
  uint64_t budget_units = 0;
  // Buffer width in bits (r). 0 disables the buffer (plain G-KMV).
  size_t buffer_bits = 0;
  uint64_t seed = kDefaultSketchSeed;
};

// Factory bound to a dataset: owns the buffer universe and global threshold.
class GbKmvSketcher {
 public:
  // Validates the options against the dataset: the buffer cost m·r/32 must
  // leave a non-negative G-KMV budget, and r cannot exceed the number of
  // distinct elements.
  static Result<GbKmvSketcher> Create(const Dataset& dataset,
                                      const GbKmvOptions& options);

  const GbKmvOptions& options() const { return options_; }
  uint64_t global_threshold() const { return global_threshold_; }
  size_t buffer_bits() const { return options_.buffer_bits; }
  // Width of the element->bit table (the bound dataset's universe_size()).
  size_t universe_size() const { return element_to_bit_.size(); }

  // The buffer universe E_H: element id of each buffer bit.
  const std::vector<ElementId>& buffer_elements() const {
    return buffer_elements_;
  }

  // Builds the sketch of any record (dataset record or incoming query).
  GbKmvSketch Sketch(const Record& record) const;

  // Pairwise intersection estimate (Eq. 27).
  static GbKmvPairEstimate EstimatePair(const GbKmvSketch& q,
                                        const GbKmvSketch& x);

  // Containment Ĉ(Q,X) = |Q∩X|^ / |Q|.
  static double EstimateContainment(const GbKmvSketch& q, const GbKmvSketch& x,
                                    size_t query_size);

  // Binary snapshot serialization (src/io). The sketcher is self-contained:
  // buffer universe, threshold and options round-trip exactly, so a loaded
  // sketcher produces bit-identical sketches. `max_universe_size` bounds the
  // stored universe width (callers pass the bound dataset's universe_size())
  // so a corrupt field cannot trigger a huge allocation. Defined in
  // io/persist_index.cc.
  void SaveTo(io::Writer* out) const;
  static Result<GbKmvSketcher> LoadFrom(io::Reader* in,
                                        size_t max_universe_size);

 private:
  GbKmvSketcher() = default;

  GbKmvOptions options_;
  uint64_t global_threshold_ = 0;
  std::vector<ElementId> buffer_elements_;
  // element id -> buffer bit, or -1 when the element is not buffered.
  std::vector<int32_t> element_to_bit_;
};

}  // namespace gbkmv

#endif  // GBKMV_SKETCH_GBKMV_H_
